"""Supervised shard cluster: checkpoint/restore, failover, backpressure.

The paper's detection model is stateful by construction — every active
call is a live product of interacting SIP/RTP EFSMs — so in a deployed
IDS a crashed or wedged shard silently destroys detection state for every
call it hosts.  This module adds the supervision tier over
:class:`~repro.vids.sharding.ShardedVids` (docs/ROBUSTNESS.md
"Supervision & failover", docs/SCALING.md):

- **Checkpointing.**  A :class:`ShardSupervisor` snapshots each member's
  call-state fact base (machine states, variable vectors, timers, media
  routes, quarantine lists, metrics, alerts) every
  ``checkpoint_cadence`` packets.  Checkpoints are *incremental*: a
  call whose EFSM system has not fired since the previous checkpoint
  reuses its prior snapshot (the firing count is an exact change
  version, see :meth:`CallRecord._sizes`).

- **Health-checked failover.**  The supervisor heartbeats every member
  on a fixed cadence; a member that misses ``heartbeat_misses``
  consecutive deadlines (killed, or wedged past its hang window) is
  declared DOWN, its packets are parked on a bounded admission queue,
  and it is restarted from the last checkpoint with exponential backoff
  between attempts.  The bounded loss window — at most the packets
  processed since that checkpoint — is accounted in
  ``cluster_lost_packets`` and on the per-incident record.

- **Migration & rebalancing.**  :meth:`ShardSupervisor.migrate_call`
  hands a live call to a sibling by checkpoint transfer: the target
  restores first (re-firing the ``on_media_route`` hooks, so the
  facade's RTP routing re-homes atomically with the call), then the
  source evicts without deletion bookkeeping.  SIP re-homes through a
  per-call routing override consulted before the consistent hash.

- **Backpressure.**  With ``credit_limit`` set, dispatch is
  credit-gated: credits replenish at each heartbeat only while the
  member's backlog is below ``credit_backlog_limit``, excess packets
  queue, and queue overflow degrades into the existing watermark-
  shedding accounting instead of growing without bound.

Chaos inputs come from :class:`~repro.netsim.faults.ShardFaultPlan` —
deterministic kill/hang/slow-member injections at absolute simulation
times, same reproducibility contract as link faults.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field, replace
from enum import Enum
from functools import partial
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, List,
                    Optional, Tuple)

from ..netsim.engine import Simulator
from ..netsim.faults import ShardFaultPlan
from ..netsim.packet import Datagram
from .alerts import Alert, AlertManager, AttackType
from .classifier import PacketKind
from .config import DEFAULT_CONFIG, VidsConfig
from .factbase import MediaKey
from .ids import Vids
from .metrics import VidsMetrics
from .sharding import ShardedVids, shard_for_call

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Observability

__all__ = ["ClusterConfig", "DEFAULT_CLUSTER_CONFIG", "ClusterMetrics",
           "MemberState", "ShardCheckpoint", "ShardMember",
           "ShardSupervisor", "SupervisedCluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the supervision tier."""

    #: Packets a member processes between checkpoints.  The loss window
    #: after a crash is bounded by this number; 1 means every packet is
    #: durable (and a restored run is packet-identical to a fault-free
    #: one, the chaos-suite contract).
    checkpoint_cadence: int = 64
    #: Seconds between supervisor heartbeats.
    heartbeat_interval: float = 0.5
    #: Consecutive missed heartbeats before a member is declared DOWN.
    heartbeat_misses: int = 2
    #: Base delay before the first restart attempt of a DOWN member.
    restart_backoff: float = 0.5
    #: Exponential growth factor between failed restart attempts.
    backoff_factor: float = 2.0
    #: Ceiling on the restart backoff.
    backoff_max: float = 8.0
    #: Bounded admission queue per member; packets offered to an
    #: unreachable or credit-exhausted member park here.  Overflow
    #: degrades into shedding accounting (the packet is forwarded
    #: fail-open, uninspected).
    admission_queue_limit: int = 4096
    #: Credits granted per heartbeat for credit-based dispatch; ``None``
    #: (default) disables the credit gate entirely — dispatch is direct
    #: and the fault-free cluster is packet-identical to a bare
    #: :class:`ShardedVids`.
    credit_limit: Optional[int] = None
    #: Backlog (seconds of unworked CPU) above which a member's credits
    #: are *not* replenished — the member is falling behind, so admission
    #: slows before the watermark shed has to engage.
    credit_backlog_limit: float = 0.5
    #: Backlog above which the heartbeat rebalances calls off the hot
    #: member onto the least-loaded sibling; ``None`` disables.
    rebalance_backlog: Optional[float] = None
    #: Fraction of a hot member's calls moved per rebalance pass.
    rebalance_fraction: float = 0.5

    def with_overrides(self, **overrides) -> "ClusterConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)


DEFAULT_CLUSTER_CONFIG = ClusterConfig()


@dataclass
class ClusterMetrics:
    """Counters maintained by the supervisor."""

    checkpoints_taken: int = 0
    calls_checkpointed: int = 0
    heartbeat_misses: int = 0
    members_down: int = 0
    members_restarted: int = 0
    restart_failures: int = 0
    lost_packets: int = 0
    packets_requeued: int = 0
    backpressure_drops: int = 0
    migrations: int = 0
    calls_migrated: int = 0
    fault_kills: int = 0
    fault_hangs: int = 0

    _COUNTER_FIELDS = (
        ("checkpoints_taken", "Shard checkpoints taken"),
        ("calls_checkpointed", "Call snapshots written across checkpoints"),
        ("heartbeat_misses", "Heartbeat deadlines missed by members"),
        ("members_down", "Times a member was declared DOWN"),
        ("members_restarted", "Members restarted from checkpoint"),
        ("restart_failures", "Restart attempts that failed (backoff grew)"),
        ("lost_packets", "Packets inside crash loss windows"),
        ("packets_requeued", "Parked packets replayed after recovery"),
        ("backpressure_drops", "Admission-queue overflow drops"),
        ("migrations", "Rebalance passes that moved at least one call"),
        ("calls_migrated", "Calls handed to a sibling by checkpoint transfer"),
        ("fault_kills", "Injected shard-kill faults"),
        ("fault_hangs", "Injected shard-hang faults"),
    )

    def register_with(self, registry: Any, prefix: str = "cluster") -> None:
        """Expose every counter through an obs ``MetricsRegistry``."""
        for name, help_text in self._COUNTER_FIELDS:
            registry.counter(f"{prefix}_{name}", help_text).set_function(
                partial(getattr, self, name))

    def summary(self) -> Dict[str, Any]:
        return {name: getattr(self, name)
                for name, _ in self._COUNTER_FIELDS}


class MemberState(Enum):
    """Supervisor's view of one shard member."""

    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"


@dataclass
class ShardCheckpoint:
    """Serializable snapshot of one member's complete analysis state."""

    shard: int
    taken_at: float
    #: Member-local packet sequence number at snapshot time.
    packet_seq: int
    #: call_id -> :meth:`CallStateFactBase.checkpoint_call` snapshot.
    calls: Dict[str, Dict[str, Any]]
    #: call_id -> firing-count version (drives incremental reuse).
    call_versions: Dict[str, int]
    quarantined: Dict[str, float]
    quarantined_media: Dict[MediaKey, str]
    metrics: VidsMetrics
    alerts: List[Alert]
    alert_counts: Counter
    deviation_keys: set
    malformed_windows: Dict[str, list]
    busy_until: float
    shedding: bool
    shed_started: float
    #: Cross-call tracker snapshots; only the first member (which owns
    #: the shared trackers) carries them.
    trackers: Optional[Dict[str, Any]] = None
    #: Stray-request dedup keys (shared set, owned by the first member).
    stray_keys: Optional[set] = None
    #: Change signal behind ``trackers``/``stray_keys`` (drives
    #: incremental reuse, like ``call_versions`` for calls).
    tracker_version: Optional[Tuple[int, int, int]] = None


@dataclass
class ShardMember:
    """Supervisor bookkeeping for one shard."""

    index: int
    vids: Vids
    state: MemberState = MemberState.UP
    #: False after a kill fault: the member process is gone until the
    #: supervisor restarts it.
    alive: bool = True
    #: The member is wedged (alive but unresponsive) until this time.
    hung_until: float = 0.0
    consecutive_misses: int = 0
    restart_attempts: int = 0
    next_restart_at: float = 0.0
    packets_since_checkpoint: int = 0
    packet_seq: int = 0
    checkpoint: Optional[ShardCheckpoint] = None
    #: Remaining dispatch credits (None: credit gate disabled).
    credits: Optional[int] = None
    #: Bounded admission queue of parked ``(classified, when)`` pairs.
    queue: Deque = field(default_factory=deque)


def _restore_metrics(target: VidsMetrics, source: VidsMetrics) -> None:
    """Write a checkpointed metrics snapshot into a live instance.

    In place, because the member's fact base and registry callbacks hold
    references to the target object.
    """
    for name, _ in VidsMetrics._COUNTER_FIELDS:
        setattr(target, name, getattr(source, name))
    target.peak_concurrent_calls = source.peak_concurrent_calls
    target.peak_state_bytes = source.peak_state_bytes
    target.call_memory_samples = list(source.call_memory_samples)
    target.shed_intervals = list(source.shed_intervals)


def _snapshot_metrics(source: VidsMetrics) -> VidsMetrics:
    """Deep-enough copy of a live metrics object for a checkpoint.

    The fields are flat counters plus two lists of immutable tuples, so a
    ``__dict__`` copy with the two lists re-materialised suffices;
    ``copy.deepcopy`` (or even a per-field getattr/setattr loop) costs
    more than the whole rest of a checkpoint on this hot path.
    """
    snapshot = VidsMetrics()
    state = snapshot.__dict__
    state.update(source.__dict__)
    state["call_memory_samples"] = list(source.call_memory_samples)
    state["shed_intervals"] = list(source.shed_intervals)
    return snapshot


def _copy_windows(windows: Dict[str, list]) -> Dict[str, list]:
    """Copy the malformed-rate windows (``{src: [start, count, fired]}``)."""
    return {src: list(window) for src, window in windows.items()}


class ShardSupervisor:
    """Heartbeats, checkpoints, restarts, and rebalances shard members."""

    def __init__(
        self,
        sharded: ShardedVids,
        config: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        fault_plan: Optional[ShardFaultPlan] = None,
        obs: Optional["Observability"] = None,
    ):
        self.sharded = sharded
        self.config = config
        self.fault_plan = fault_plan
        self.clock_now = sharded.clock_now
        self.timer_scheduler = sharded.timer_scheduler
        self.metrics = ClusterMetrics()
        self.obs = obs if obs is not None else sharded.obs
        self._trace = self.obs.trace if self.obs is not None else None
        self.members: List[ShardMember] = [
            ShardMember(index=index, vids=shard,
                        credits=config.credit_limit)
            for index, shard in enumerate(sharded.shards)
        ]
        #: Per-call routing overrides installed by migration, consulted
        #: by :meth:`SupervisedCluster.shard_index` before the hash.
        self.call_routes: Dict[str, int] = {}
        #: One record per down/restore cycle, for loss-window forensics.
        self.incidents: List[Dict[str, Any]] = []
        self._started = False
        if self.obs is not None and self.obs.registry is not None:
            self._register_metrics(self.obs.registry)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Take baseline checkpoints, arm faults, start heartbeating."""
        if self._started:
            return
        self._started = True
        now = self.clock_now()
        for member in self.members:
            self.take_checkpoint(member)
        plan = self.fault_plan
        if plan is not None:
            for at, shard in plan.kills:
                self.timer_scheduler(max(0.0, at - now),
                                     partial(self._kill, shard))
            for at, until, shard in plan.hangs:
                self.timer_scheduler(max(0.0, at - now),
                                     partial(self._hang, shard, until))
        self.timer_scheduler(self.config.heartbeat_interval, self._heartbeat)

    # -- fault injection ------------------------------------------------------

    def _kill(self, index: int) -> None:
        """Injected crash: the member process dies on the spot."""
        member = self.members[index]
        member.alive = False
        self.metrics.fault_kills += 1
        # A dead process can no longer mutate shared state: detach its
        # media-route callback so its still-scheduled timers don't keep
        # editing the facade's routing table from beyond the grave.
        member.vids.factbase.on_media_route = None
        if self._trace is not None:
            self._trace.emit("shard-kill", self.clock_now(), shard=index)

    def _hang(self, index: int, until: float) -> None:
        """Injected wedge: alive but unresponsive until ``until``."""
        member = self.members[index]
        member.hung_until = max(member.hung_until, until)
        self.metrics.fault_hangs += 1
        if self._trace is not None:
            self._trace.emit("shard-hang", self.clock_now(), shard=index,
                             until=until)

    def _reachable(self, member: ShardMember, now: float) -> bool:
        return (member.alive and member.state is not MemberState.DOWN
                and now >= member.hung_until)

    # -- heartbeat ------------------------------------------------------------

    def _heartbeat(self) -> None:
        now = self.clock_now()
        config = self.config
        for member in self.members:
            if member.state is MemberState.DOWN:
                if now >= member.next_restart_at:
                    self.try_restart(member, now)
                continue
            if member.alive and now >= member.hung_until:
                # Deadline met: the member answered this heartbeat.
                member.consecutive_misses = 0
                if member.state is MemberState.SUSPECT:
                    member.state = MemberState.UP
                if config.credit_limit is not None:
                    self._replenish(member, now)
                elif member.queue:
                    self._drain_queue(member, now)
                if (config.rebalance_backlog is not None
                        and member.vids.backlog(now)
                        > config.rebalance_backlog):
                    self.rebalance(member.index)
                continue
            member.consecutive_misses += 1
            member.state = MemberState.SUSPECT
            self.metrics.heartbeat_misses += 1
            if self._trace is not None:
                self._trace.emit("heartbeat-miss", now, shard=member.index,
                                 misses=member.consecutive_misses)
            if member.consecutive_misses >= config.heartbeat_misses:
                self._declare_down(member, now)
        self._prune_call_routes()
        self.timer_scheduler(config.heartbeat_interval, self._heartbeat)

    def _declare_down(self, member: ShardMember, now: float) -> None:
        member.state = MemberState.DOWN
        member.consecutive_misses = 0
        # Everything since the last checkpoint is lost with the process.
        lost = member.packets_since_checkpoint
        self.metrics.members_down += 1
        self.metrics.lost_packets += lost
        member.vids.factbase.on_media_route = None
        backoff = self._backoff(member)
        member.next_restart_at = now + backoff
        checkpoint_at = (member.checkpoint.taken_at
                         if member.checkpoint is not None else None)
        self.incidents.append({
            "shard": member.index,
            "down_at": now,
            "checkpoint_at": checkpoint_at,
            "lost_packets": lost,
            "restart_failures": 0,
            "restored_at": None,
        })
        if self._trace is not None:
            self._trace.emit("shard-down", now, shard=member.index,
                             lost_packets=lost, checkpoint_at=checkpoint_at,
                             next_restart_at=member.next_restart_at)

    def _backoff(self, member: ShardMember) -> float:
        config = self.config
        return min(config.restart_backoff
                   * config.backoff_factor ** member.restart_attempts,
                   config.backoff_max)

    def try_restart(self, member: ShardMember, now: float) -> bool:
        """Restart a DOWN member from its last checkpoint."""
        if member.alive and now < member.hung_until:
            # Still wedged: the stuck process won't yield its resources,
            # so the restart fails and the backoff grows.
            member.restart_attempts += 1
            self.metrics.restart_failures += 1
            member.next_restart_at = now + self._backoff(member)
            if self.incidents:
                self.incidents[-1]["restart_failures"] += 1
            if self._trace is not None:
                self._trace.emit("shard-restart-failed", now,
                                 shard=member.index,
                                 next_restart_at=member.next_restart_at)
            return False
        assert member.checkpoint is not None
        self._apply_checkpoint(member, member.checkpoint)
        member.alive = True
        member.hung_until = 0.0
        member.state = MemberState.UP
        member.consecutive_misses = 0
        member.restart_attempts = 0
        self.metrics.members_restarted += 1
        for incident in reversed(self.incidents):
            if incident["shard"] == member.index:
                incident["restored_at"] = now
                break
        if self._trace is not None:
            self._trace.emit("shard-restored", now, shard=member.index,
                             calls=len(member.vids.factbase.records),
                             queued=len(member.queue))
        # Replay everything parked while the member was down, in arrival
        # order; then re-baseline so the recovered state is durable.
        self._drain_queue(member, now, force=True)
        self.take_checkpoint(member)
        return True

    # -- dispatch / backpressure ----------------------------------------------

    def dispatch(self, index: int, classified, when: float) -> float:
        """Admit one classified packet to a member, or park it."""
        member = self.members[index]
        if (member.queue or not self._reachable(member, when)
                or not self._has_credit(member)):
            # Arrival order must survive backpressure: once anything is
            # queued, new packets go behind it.
            cost = self._enqueue(member, classified, when)
            if self._reachable(member, when):
                cost += self._drain_queue(member, when)
            return cost
        if member.credits is not None:
            member.credits -= 1
        return self._process_on(member, classified, when)

    def _has_credit(self, member: ShardMember) -> bool:
        return member.credits is None or member.credits > 0

    def _enqueue(self, member: ShardMember, classified, when: float) -> float:
        if len(member.queue) >= self.config.admission_queue_limit:
            # Overflow degrades into shedding: the packet is forwarded
            # fail-open and never inspected, same contract as the
            # watermark shed, accounted on the member it was bound for.
            self.metrics.backpressure_drops += 1
            member.vids.metrics.packets_shed += 1
            if self._trace is not None:
                self._trace.emit("backpressure-drop", when,
                                 shard=member.index,
                                 queued=len(member.queue))
            return 0.0
        member.queue.append((classified, when))
        return 0.0

    def _drain_queue(self, member: ShardMember, now: float,
                     force: bool = False) -> float:
        total = 0.0
        while member.queue:
            if not force and member.credits is not None:
                if member.credits <= 0:
                    break
                member.credits -= 1
            classified, when = member.queue.popleft()
            self.metrics.packets_requeued += 1
            total += self._process_on(member, classified, when)
        return total

    def _replenish(self, member: ShardMember, now: float) -> None:
        """Credit grant: only while the member is keeping up."""
        if member.vids.backlog(now) <= self.config.credit_backlog_limit:
            member.credits = self.config.credit_limit
        if member.queue:
            self._drain_queue(member, now)

    def _process_on(self, member: ShardMember, classified,
                    when: float) -> float:
        vids = member.vids
        cost = vids.process_classified(classified, when)
        plan = self.fault_plan
        if plan is not None and plan.slowdowns:
            factor = plan.slow_factor(member.index, when)
            if factor > 1.0:
                # A degraded member takes longer per packet: inflate the
                # charged service time so backlog/shedding/backpressure
                # all see the slowdown.
                extra = cost * (factor - 1.0)
                vids.metrics.cpu_time += extra
                vids._busy_until += extra
                cost += extra
        member.packet_seq += 1
        member.packets_since_checkpoint += 1
        if member.packets_since_checkpoint >= self.config.checkpoint_cadence:
            self.take_checkpoint(member)
        return cost

    # -- checkpointing --------------------------------------------------------

    def take_checkpoint(self, member: ShardMember) -> ShardCheckpoint:
        """Snapshot one member's analysis state (incrementally)."""
        vids = member.vids
        factbase = vids.factbase
        previous = member.checkpoint
        prev_calls = previous.calls if previous is not None else {}
        prev_versions = previous.call_versions if previous is not None else {}
        calls: Dict[str, Dict[str, Any]] = {}
        versions: Dict[str, int] = {}
        for call_id, record in factbase.records.items():
            version = record.system.deliveries
            if prev_versions.get(call_id) == version:
                # Unchanged since the last checkpoint: reuse the snapshot,
                # refreshing only the fields that move outside firings.
                snapshot = dict(prev_calls[call_id])
                snapshot["last_activity"] = record.last_activity
                snapshot["deletion_scheduled"] = record.deletion_scheduled
                snapshot["delete_at"] = record.delete_at
            else:
                snapshot = factbase.checkpoint_call(record)
            calls[call_id] = snapshot
            versions[call_id] = version
        trackers = stray = tracker_version = None
        if member.index == 0:
            tracker_version = self._tracker_version(vids)
            if (previous is not None
                    and previous.tracker_version == tracker_version):
                trackers = previous.trackers
                stray = previous.stray_keys
            else:
                trackers = self._checkpoint_trackers(vids)
                stray = set(vids.engine._stray_keys)
        checkpoint = ShardCheckpoint(
            shard=member.index,
            taken_at=self.clock_now(),
            packet_seq=member.packet_seq,
            calls=calls,
            call_versions=versions,
            quarantined=dict(factbase.quarantined),
            quarantined_media=dict(factbase.quarantined_media),
            metrics=_snapshot_metrics(vids.metrics),
            alerts=list(vids.alert_manager.alerts),
            alert_counts=Counter(vids.alert_manager.counts),
            deviation_keys=set(vids.engine._deviation_keys),
            malformed_windows=_copy_windows(vids._malformed_windows),
            busy_until=vids._busy_until,
            shedding=vids._shedding,
            shed_started=vids._shed_started,
            trackers=trackers,
            stray_keys=stray,
            tracker_version=tracker_version,
        )
        member.checkpoint = checkpoint
        member.packets_since_checkpoint = 0
        self.metrics.checkpoints_taken += 1
        self.metrics.calls_checkpointed += len(calls)
        return checkpoint

    def _tracker_version(self, vids: Vids) -> Tuple[int, int, int]:
        """Cheap change signal over the shard-0 shared trackers.

        Tracker machines mutate only through ``deliver`` (observations and
        timer firings), and every delivery bumps the instance's monotonic
        ``deliveries`` counter — so machine count + total delivery count
        detects any change.  Stray media keys and the orphan flagged set are counted
        directly.  RTP-dominated traffic leaves all of these untouched, so
        steady-state checkpoints reuse the previous tracker snapshot.
        """
        machines = 0
        deliveries = 0
        for tracker in (vids.flood_tracker, vids.source_flood_tracker,
                        vids.orphan_tracker):
            for instance in tracker.machines.values():
                machines += 1
                deliveries += instance.deliveries
        extras = (len(vids.engine._stray_keys)
                  + len(vids.orphan_tracker._unsolicited_flagged))
        return (machines, deliveries, extras)

    def _checkpoint_trackers(self, vids: Vids) -> Dict[str, Any]:
        return {
            "flood": {target: instance.snapshot()
                      for target, instance in vids.flood_tracker
                      .machines.items()},
            "source_flood": {target: instance.snapshot()
                             for target, instance in vids
                             .source_flood_tracker.machines.items()},
            "orphan": {destination: instance.snapshot()
                       for destination, instance in vids.orphan_tracker
                       .machines.items()},
            "orphan_flagged": set(vids.orphan_tracker._unsolicited_flagged),
        }

    # -- restore --------------------------------------------------------------

    def _build_member_vids(self, index: int) -> Vids:
        """A fresh Vids wired exactly as :class:`ShardedVids` wires shards."""
        sharded = self.sharded
        kwargs: Dict[str, Any] = {}
        if index > 0:
            first = sharded.shards[0]
            kwargs = dict(flood_tracker=first.flood_tracker,
                          source_flood_tracker=first.source_flood_tracker,
                          orphan_tracker=first.orphan_tracker)
        vids = Vids(config=sharded.config, clock_now=sharded.clock_now,
                    timer_scheduler=sharded.timer_scheduler, obs=sharded.obs,
                    register_metrics=False, **kwargs)
        if index > 0:
            vids.engine._stray_keys = sharded.shards[0].engine._stray_keys
        vids.factbase.on_media_route = partial(
            sharded._media_route_changed, index)
        return vids

    def _apply_checkpoint(self, member: ShardMember,
                          checkpoint: ShardCheckpoint) -> None:
        """Replace a member's Vids with one rebuilt from a checkpoint."""
        vids = self._build_member_vids(member.index)
        _restore_metrics(vids.metrics, checkpoint.metrics)
        vids.alert_manager.alerts = list(checkpoint.alerts)
        vids.alert_manager.counts.update(checkpoint.alert_counts)
        vids.engine._deviation_keys = set(checkpoint.deviation_keys)
        vids.factbase.quarantined.update(checkpoint.quarantined)
        vids.factbase.quarantined_media.update(checkpoint.quarantined_media)
        vids._malformed_windows = _copy_windows(checkpoint.malformed_windows)
        vids._busy_until = checkpoint.busy_until
        vids._shedding = checkpoint.shedding
        vids._shed_started = checkpoint.shed_started
        # Restoring each call re-fires the media-route hooks, so the
        # facade's routing table re-homes the RTP along with the call.
        for snapshot in checkpoint.calls.values():
            vids.factbase.restore_call(snapshot)
        if member.index == 0 and checkpoint.trackers is not None:
            self._restore_trackers(vids, checkpoint)
        self.sharded.shards[member.index] = vids
        member.vids = vids
        member.packet_seq = checkpoint.packet_seq
        if member.index == 0:
            self._rewire_shared_trackers(vids)
        else:
            vids.engine._stray_keys = self.sharded.shards[0].engine._stray_keys
        if self.obs is not None and self.obs.registry is not None:
            # The get-or-create registry re-binds every per-shard series
            # to the replacement instance (set_function replaces).
            self.sharded._register_shard_metrics(self.obs.registry,
                                                 member.index, vids)

    def _restore_trackers(self, vids: Vids,
                          checkpoint: ShardCheckpoint) -> None:
        trackers = checkpoint.trackers
        assert trackers is not None
        for target, snapshot in trackers["flood"].items():
            vids.flood_tracker.machine_for(target).restore(snapshot)
        for target, snapshot in trackers["source_flood"].items():
            vids.source_flood_tracker.machine_for(target).restore(snapshot)
        orphan = vids.orphan_tracker
        for destination, snapshot in trackers["orphan"].items():
            from .patterns.media_spam import build_media_spam_machine
            from ..efsm.machine import EfsmInstance
            definition = build_media_spam_machine(
                orphan.seq_gap, orphan.ts_gap,
                name=f"media_spam[{destination[0]}:{destination[1]}]")
            instance = EfsmInstance(definition, clock_now=orphan.clock_now)
            instance.restore(snapshot)
            orphan.machines[destination] = instance
        orphan._unsolicited_flagged = set(trackers["orphan_flagged"])
        stray = vids.engine._stray_keys
        stray.clear()
        if checkpoint.stray_keys:
            stray.update(checkpoint.stray_keys)

    def _rewire_shared_trackers(self, first: Vids) -> None:
        """Point the siblings at the restored first member's trackers."""
        for shard in self.sharded.shards[1:]:
            shard.flood_tracker = first.flood_tracker
            shard.source_flood_tracker = first.source_flood_tracker
            shard.orphan_tracker = first.orphan_tracker
            shard.distributor.flood_tracker = first.flood_tracker
            shard.distributor.source_flood_tracker = first.source_flood_tracker
            shard.distributor.orphan_tracker = first.orphan_tracker
            shard.engine._stray_keys = first.engine._stray_keys

    # -- migration & rebalancing ----------------------------------------------

    def migrate_call(self, source_index: int, target_index: int,
                     call_id: str) -> bool:
        """Hand one live call to a sibling by checkpoint transfer.

        Restore-then-evict ordering makes the RTP re-home atomic: the
        target's restore re-indexes the media keys (facade routes repoint
        to the target), so the source's eviction-time retirement no-ops
        (:meth:`ShardedVids._media_route_changed` only deletes a route
        still owned by the retiring shard).
        """
        if source_index == target_index:
            return False
        source = self.members[source_index].vids
        target = self.members[target_index].vids
        record = source.factbase.get(call_id)
        if record is None:
            return False
        snapshot = source.factbase.checkpoint_call(record)
        target.factbase.restore_call(snapshot)
        source.factbase.evict(call_id)
        self.call_routes[call_id] = target_index
        self.metrics.calls_migrated += 1
        if self._trace is not None:
            self._trace.emit("shard-migrate", self.clock_now(),
                             call_id=call_id, source=source_index,
                             target=target_index)
        return True

    def rebalance(self, source_index: int,
                  target_index: Optional[int] = None,
                  max_calls: Optional[int] = None) -> int:
        """Drain part of a hot member's call load onto siblings."""
        source = self.members[source_index].vids
        call_ids = list(source.factbase.records)
        if max_calls is None:
            max_calls = max(1, int(len(call_ids)
                                   * self.config.rebalance_fraction))
        moved = 0
        for call_id in call_ids[:max_calls]:
            target = (target_index if target_index is not None
                      else self._least_loaded(exclude=source_index))
            if target is None:
                break
            if self.migrate_call(source_index, target, call_id):
                moved += 1
        if moved:
            self.metrics.migrations += 1
        return moved

    def _least_loaded(self, exclude: int) -> Optional[int]:
        now = self.clock_now()
        candidates = [m for m in self.members
                      if m.index != exclude and self._reachable(m, now)]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda m: (m.vids.factbase.active_calls,
                                  m.vids.backlog(now))).index

    def _prune_call_routes(self) -> None:
        """Drop migration overrides whose call has since been deleted."""
        if not self.call_routes:
            return
        for call_id in list(self.call_routes):
            index = self.call_routes[call_id]
            vids = self.members[index].vids
            if (call_id not in vids.factbase.records
                    and call_id not in vids.factbase.quarantined):
                del self.call_routes[call_id]

    # -- inspection / observability --------------------------------------------

    @property
    def members_up(self) -> int:
        return sum(1 for m in self.members if m.state is not MemberState.DOWN)

    def queue_depth(self) -> int:
        return sum(len(m.queue) for m in self.members)

    def _register_metrics(self, registry) -> None:
        self.metrics.register_with(registry)
        registry.gauge(
            "cluster_members_up",
            "Members not currently declared DOWN",
        ).set_function(lambda: self.members_up)
        registry.gauge(
            "cluster_queue_depth",
            "Packets parked on admission queues across members",
        ).set_function(self.queue_depth)


class SupervisedCluster:
    """A :class:`ShardedVids` under a :class:`ShardSupervisor`.

    Satisfies the same ``PacketProcessor`` protocol as :class:`Vids` and
    :class:`ShardedVids`, so it plugs into the inline device, the
    scenario runner (``ScenarioParams(supervise=True)``), and trace
    replay unchanged.  All packets flow through the supervisor's
    dispatch, which applies fault reachability, credits, and admission
    queues before the member's ``process_classified``.
    """

    def __init__(
        self,
        shards: int = 4,
        sim: Optional[Simulator] = None,
        config: VidsConfig = DEFAULT_CONFIG,
        clock_now: Optional[Callable[[], float]] = None,
        timer_scheduler: Optional[Callable] = None,
        obs: Optional["Observability"] = None,
        cluster: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
        fault_plan: Optional[ShardFaultPlan] = None,
        default_shard: int = 0,
    ):
        self.sharded = ShardedVids(
            shards=shards, sim=sim, config=config, clock_now=clock_now,
            timer_scheduler=timer_scheduler, obs=obs, backend="serial",
            default_shard=default_shard)
        self.supervisor = ShardSupervisor(self.sharded, cluster,
                                          fault_plan=fault_plan, obs=obs)
        self.config = config
        self.cluster_config = cluster
        self.clock_now = self.sharded.clock_now
        self.supervisor.start()

    # -- PacketProcessor interface --------------------------------------------

    def process(self, datagram: Datagram, now: float) -> float:
        """Classify once, dispatch through the supervisor."""
        sharded = self.sharded
        try:
            classified = sharded.classifier.classify(datagram)
        except Exception as exc:  # crash containment, layer 1
            if not self.config.crash_containment:
                raise
            return self.sharded.shards[
                sharded.default_shard].contain_classifier_error(
                    datagram, exc, now)
        return self.supervisor.dispatch(self.shard_index(classified),
                                        classified, now)

    def process_batch(self, items, clock=None) -> float:
        """Time-ordered batch ingestion (the replay/offline path).

        Advancing the shared clock between packets is what fires the
        supervisor's heartbeats and the fault plan's injections at their
        scheduled simulation times during a replay.

        The loop inlines routing and the healthy-member dispatch (same
        trick as :meth:`ShardedVids.process_batch`): a member that is up,
        queue-empty, and credit-flush takes the packet with no call
        layers in between, so supervision stays within the documented
        <=10% overhead budget of the bare sharded facade.  Any pressure —
        parked packets, faults, exhausted credits, an active slowdown
        plan — falls back to the supervisor's full dispatch.
        """
        total = 0.0
        supervisor = self.supervisor
        sharded = self.sharded
        members = supervisor.members
        classify = sharded.classifier.classify
        routes_get = sharded._media_routes.get
        call_routes = supervisor.call_routes
        n_shards = sharded.n_shards
        default = sharded.default_shard
        contain = self.config.crash_containment
        cadence = supervisor.config.checkpoint_cadence
        plan = supervisor.fault_plan
        slow_plan = plan is not None and bool(plan.slowdowns)
        sip_kind, rtp_kind = PacketKind.SIP, PacketKind.RTP
        rtcp_kind = PacketKind.RTCP
        down = MemberState.DOWN
        if clock is not None:
            now = clock.now
            advance = clock.advance
            current = now()
        else:
            advance = None
            current = None
        # Lean mode: with no fault plan, no credit gating, and no
        # rebalance trigger, nothing can change a member's health inside
        # one batch (heartbeats keep taking their healthy branch), so the
        # loop pre-binds each member's analysis entry point and settles
        # the checkpoint counters through a local countdown instead of
        # two attribute writes per packet.  Any other configuration — or
        # any member already degraded when the batch starts — takes the
        # general loop below, which re-evaluates health on every packet.
        horizon = current if advance is not None else 0.0
        if (plan is None and supervisor.config.credit_limit is None
                and supervisor.config.rebalance_backlog is None
                and all(m.alive and m.state is not down and not m.queue
                        and m.hung_until <= horizon for m in members)):
            fast = [m.vids.process_classified for m in members]
            countdown = [cadence - m.packets_since_checkpoint
                         for m in members]

            def settle(index: int) -> None:
                member = members[index]
                since = cadence - countdown[index]
                member.packet_seq += since - member.packets_since_checkpoint
                member.packets_since_checkpoint = since

            regress = sharded.shards[default].metrics
            try:
                for datagram, when in items:
                    if advance is not None:
                        if when < current:
                            # Clamped onto the monotonic analysis clock
                            # (see Vids.process_batch).
                            regress.time_regressions += 1
                        elif when > current:
                            advance(when - current)
                            current = now()
                        when = current
                    try:
                        classified = classify(datagram)
                    except Exception as exc:  # crash containment, layer 1
                        if not contain:
                            raise
                        total += sharded.shards[
                            default].contain_classifier_error(
                                datagram, exc, when)
                        continue
                    kind = classified.kind
                    if kind is rtp_kind or kind is rtcp_kind:
                        dst = datagram.dst
                        index = routes_get((dst.ip, dst.port), default)
                    elif kind is sip_kind and classified.sip.call_id:
                        call_id = classified.sip.call_id
                        index = (call_routes.get(call_id)
                                 if call_routes else None)
                        if index is None:
                            index = shard_for_call(call_id, n_shards)
                    else:
                        index = shard_for_call(datagram.src.ip, n_shards)
                    total += fast[index](classified, when)
                    left = countdown[index] = countdown[index] - 1
                    if left <= 0:
                        settle(index)
                        supervisor.take_checkpoint(members[index])
                        countdown[index] = cadence
            finally:
                for index in range(len(members)):
                    settle(index)
            return total
        regress = sharded.shards[default].metrics
        for datagram, when in items:
            if advance is not None:
                if when < current:
                    # Clamped onto the monotonic analysis clock (see
                    # Vids.process_batch).
                    regress.time_regressions += 1
                elif when > current:
                    advance(when - current)
                    current = now()
                when = current
            try:
                classified = classify(datagram)
            except Exception as exc:  # crash containment, layer 1
                if not contain:
                    raise
                total += sharded.shards[default].contain_classifier_error(
                    datagram, exc, when)
                continue
            kind = classified.kind
            if kind is rtp_kind or kind is rtcp_kind:
                dst = datagram.dst
                index = routes_get((dst.ip, dst.port), default)
            elif kind is sip_kind and classified.sip.call_id:
                call_id = classified.sip.call_id
                index = call_routes.get(call_id) if call_routes else None
                if index is None:
                    index = shard_for_call(call_id, n_shards)
            else:
                index = shard_for_call(datagram.src.ip, n_shards)
            member = members[index]
            if (member.queue or not member.alive or member.state is down
                    or when < member.hung_until or slow_plan
                    or (member.credits is not None and member.credits <= 0)):
                total += supervisor.dispatch(index, classified, when)
                continue
            if member.credits is not None:
                member.credits -= 1
            total += member.vids.process_classified(classified, when)
            member.packet_seq += 1
            member.packets_since_checkpoint += 1
            if member.packets_since_checkpoint >= cadence:
                supervisor.take_checkpoint(member)
        return total

    def shard_index(self, classified) -> int:
        """Owning shard, honouring migration overrides before the hash."""
        routes = self.supervisor.call_routes
        if routes and classified.kind is PacketKind.SIP \
                and classified.sip is not None and classified.sip.call_id:
            override = routes.get(classified.sip.call_id)
            if override is not None:
                return override
        return self.sharded.shard_index(classified)

    # -- aggregation (delegated to the sharded facade) -------------------------

    @property
    def shards(self) -> List[Vids]:
        return self.sharded.shards

    @property
    def n_shards(self) -> int:
        return self.sharded.n_shards

    @property
    def metrics(self) -> VidsMetrics:
        return self.sharded.metrics

    @property
    def cluster_metrics(self) -> ClusterMetrics:
        return self.supervisor.metrics

    @property
    def incidents(self) -> List[Dict[str, Any]]:
        return self.supervisor.incidents

    @property
    def alerts(self) -> List[Alert]:
        return self.sharded.alerts

    @property
    def alert_manager(self) -> AlertManager:
        return self.sharded.alert_manager

    def alert_count(self, attack_type: Optional[AttackType] = None) -> int:
        return self.sharded.alert_count(attack_type)

    @property
    def active_calls(self) -> int:
        return self.sharded.active_calls

    @property
    def media_routes(self) -> Dict[MediaKey, int]:
        return self.sharded.media_routes

    @property
    def shedding(self) -> bool:
        return self.sharded.shedding

    def backlog(self, now: Optional[float] = None) -> float:
        return self.sharded.backlog(now)

    def flush_shed_interval(self, now: Optional[float] = None) -> None:
        self.sharded.flush_shed_interval(now)

    def collect_garbage(self) -> int:
        return self.sharded.collect_garbage()

    def summary(self) -> dict:
        summary = self.sharded.summary()
        summary["supervised"] = True
        summary["members_up"] = self.supervisor.members_up
        summary["cluster"] = self.supervisor.metrics.summary()
        summary["incidents"] = len(self.supervisor.incidents)
        return summary

    def report(self) -> str:
        """The sharded report plus the supervision ledger."""
        from ..analysis.report import format_table

        base = self.sharded.report()
        rows = []
        for member in self.supervisor.members:
            checkpoint_at = (f"{member.checkpoint.taken_at:.3f}"
                             if member.checkpoint is not None else "-")
            rows.append((str(member.index), member.state.value,
                         checkpoint_at, member.packets_since_checkpoint,
                         len(member.queue),
                         "-" if member.credits is None else member.credits))
        table = format_table(
            ("member", "state", "checkpoint", "since-ckpt", "queued",
             "credits"), rows)
        cluster = self.supervisor.metrics
        return (f"{base}\n\n=== supervision "
                f"(members up: {self.supervisor.members_up}"
                f"/{self.sharded.n_shards}) ===\n{table}\n"
                f"checkpoints: {cluster.checkpoints_taken}  "
                f"restarts: {cluster.members_restarted}  "
                f"lost packets: {cluster.lost_packets}  "
                f"requeued: {cluster.packets_requeued}  "
                f"migrated: {cluster.calls_migrated}")
