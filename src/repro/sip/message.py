"""SIP message model: parse from and serialize to RFC 3261 wire text.

Messages are carried as UTF-8 text over the simulated UDP transport, so the
vids classifier sees the same byte stream a network sniffer would.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple, Union

from .constants import METHODS, SIP_VERSION, reason_phrase
from .errors import SipParseError
from .headers import CSeq, NameAddr, Via, canonical_header_name
from .uri import SipUri

__all__ = ["SipMessage", "SipRequest", "SipResponse", "parse_message", "is_sip_payload"]

CRLF = "\r\n"


#: Sentinel distinguishing "never computed" from a computed ``None``.
_UNSET = object()


class SipMessage:
    """Common behaviour of requests and responses.

    Headers are stored as an ordered list of (canonical-name, value-text)
    pairs; repeated headers (e.g. Via) keep their order, which matters for
    response routing.

    Header access is O(1) amortized: a name -> positions index is built
    lazily and the typed accessors (``from_``, ``cseq``, ``vias``, ...)
    memoize their parse.  Both caches are invalidated by every mutator
    (``set``/``add``/``prepend``/``remove_first`` and assignment to
    ``headers``), so reads always observe the latest mutation.
    """

    #: One message object per packet on the classifier hot path —
    #: ``__slots__`` drops the per-message instance dict.
    __slots__ = ("_headers", "body", "_positions", "_typed")

    def __init__(self, headers: Optional[List[Tuple[str, str]]] = None,
                 body: str = ""):
        self._headers: List[Tuple[str, str]] = list(headers or [])
        self.body = body
        self._positions: Optional[Dict[str, List[int]]] = None
        self._typed: Dict[str, Any] = {}

    @property
    def headers(self) -> List[Tuple[str, str]]:
        """The ordered (canonical-name, value) list.

        Reassigning the attribute invalidates the header caches; mutate
        through ``set``/``add``/``prepend``/``remove_first`` otherwise.
        """
        return self._headers

    @headers.setter
    def headers(self, value: List[Tuple[str, str]]) -> None:
        self._headers = list(value)
        self._invalidate()

    #: Which typed-accessor memo keys a mutation of each header invalidates.
    _TYPED_KEYS = {
        "From": ("from",),
        "To": ("to",),
        "CSeq": ("cseq",),
        "Contact": ("contact",),
        "Via": ("vias", "top_via"),
    }

    def _invalidate(self) -> None:
        self._positions = None
        if self._typed:
            self._typed.clear()

    def _invalidate_typed(self, name: str) -> None:
        """Drop only the memoized values derived from header ``name``."""
        typed = self._typed
        if typed:
            for key in self._TYPED_KEYS.get(name, ()):
                typed.pop(key, None)

    def _position_index(self) -> Dict[str, List[int]]:
        """name -> list of indices into ``self._headers`` (lazily built)."""
        index = self._positions
        if index is None:
            index = {}
            for position, (key, _) in enumerate(self._headers):
                index.setdefault(key, []).append(position)
            self._positions = index
        return index

    # -- generic header access ---------------------------------------------

    def get(self, name: str) -> Optional[str]:
        """First value of header ``name`` (canonicalized), or None."""
        index = self._positions
        if index is None:
            # No index yet: a linear scan of the (typically ~8-entry)
            # header list is cheaper than building one for the usual
            # single first-value lookup; the index is built lazily by the
            # multi-value and mutation paths that amortize it.
            target = canonical_header_name(name)
            for key, value in self._headers:
                if key == target:
                    return value
            return None
        positions = index.get(canonical_header_name(name))
        return self._headers[positions[0]][1] if positions else None

    def get_all(self, name: str) -> List[str]:
        index = self._positions
        if index is None:
            index = self._position_index()
        positions = index.get(canonical_header_name(name))
        if not positions:
            return []
        headers = self._headers
        return [headers[i][1] for i in positions]

    def set(self, name: str, value: object) -> None:
        """Replace all values of ``name`` with a single ``value``.

        A single existing occurrence is replaced in place (header position
        preserved) and the position index stays valid; only the memoized
        typed value of this header is dropped.
        """
        name = canonical_header_name(name)
        value = str(value)
        headers = self._headers
        positions = self._positions
        if positions is not None:
            existing = positions.get(name)
            if existing is None:
                headers.append((name, value))
                positions[name] = [len(headers) - 1]
            elif len(existing) == 1:
                headers[existing[0]] = (name, value)
            else:
                self._headers = [(k, v) for k, v in headers if k != name]
                self._headers.append((name, value))
                self._positions = None
        else:
            # No index: scan once.  A single occurrence is replaced in
            # place, exactly like the indexed path — serialization order
            # must not depend on whether reads built the index first.
            first = None
            count = 0
            for position, (key, _) in enumerate(headers):
                if key == name:
                    count += 1
                    if first is None:
                        first = position
            if first is None:
                headers.append((name, value))
            elif count == 1:
                headers[first] = (name, value)
            else:
                self._headers = [(k, v) for k, v in headers if k != name]
                self._headers.append((name, value))
        self._invalidate_typed(name)

    def add(self, name: str, value: object) -> None:
        """Append a value for ``name`` (after existing ones)."""
        name = canonical_header_name(name)
        self._headers.append((name, str(value)))
        positions = self._positions
        if positions is not None:
            positions.setdefault(name, []).append(len(self._headers) - 1)
        self._invalidate_typed(name)

    def prepend(self, name: str, value: object) -> None:
        """Insert a value for ``name`` before existing ones (Via stacking)."""
        self._headers.insert(0, (canonical_header_name(name), str(value)))
        self._invalidate()

    def remove_first(self, name: str) -> Optional[str]:
        """Remove and return the first value of ``name``."""
        name = canonical_header_name(name)
        for index, (key, value) in enumerate(self._headers):
            if key == name:
                del self._headers[index]
                self._invalidate()
                return value
        return None

    # -- typed accessors -----------------------------------------------------
    #
    # Each memoizes its parsed value in ``self._typed`` until the next
    # mutation; ``sip_event_from_message`` and the transaction layer hit
    # the same accessors repeatedly for every packet on the wire.

    def _cached(self, key: str, compute) -> Any:
        value = self._typed.get(key, _UNSET)
        if value is _UNSET:
            value = compute()
            self._typed[key] = value
        return value

    @property
    def call_id(self) -> Optional[str]:
        return self.get("Call-ID")

    @property
    def cseq(self) -> Optional[CSeq]:
        return self._cached("cseq", self._parse_cseq)

    def _parse_cseq(self) -> Optional[CSeq]:
        value = self.get("CSeq")
        return CSeq.parse(value) if value else None

    @property
    def from_(self) -> Optional[NameAddr]:
        return self._cached("from", self._parse_from)

    def _parse_from(self) -> Optional[NameAddr]:
        value = self.get("From")
        return NameAddr.parse(value) if value else None

    @property
    def to(self) -> Optional[NameAddr]:
        return self._cached("to", self._parse_to)

    def _parse_to(self) -> Optional[NameAddr]:
        value = self.get("To")
        return NameAddr.parse(value) if value else None

    @property
    def contact(self) -> Optional[NameAddr]:
        return self._cached("contact", self._parse_contact)

    def _parse_contact(self) -> Optional[NameAddr]:
        value = self.get("Contact")
        return NameAddr.parse(value) if value else None

    @property
    def vias(self) -> List[Via]:
        # The tuple is cached; a fresh list protects the cache from callers
        # that mutate the returned sequence.
        return list(self._cached("vias", self._parse_vias))

    def _parse_vias(self) -> Tuple[Via, ...]:
        return tuple(Via.parse(value) for value in self.get_all("Via"))

    @property
    def top_via(self) -> Optional[Via]:
        return self._cached("top_via", self._parse_top_via)

    def _parse_top_via(self) -> Optional[Via]:
        value = self.get("Via")
        return Via.parse(value) if value else None

    @property
    def branch(self) -> Optional[str]:
        via = self.top_via
        return via.branch if via else None

    # -- serialization -------------------------------------------------------

    def start_line(self) -> str:
        raise NotImplementedError

    def serialize(self) -> bytes:
        """Render the full message to wire bytes, fixing Content-Length."""
        body_bytes = self.body.encode("utf-8")
        length = str(len(body_bytes))
        if self.get("Content-Length") != length:
            self.set("Content-Length", length)
        lines = [self.start_line()]
        lines.extend(f"{name}: {value}" for name, value in self._headers)
        text = CRLF.join(lines) + CRLF + CRLF
        return text.encode("utf-8") + body_bytes

    def __bytes__(self) -> bytes:
        return self.serialize()


class SipRequest(SipMessage):
    """A SIP request: method, Request-URI, headers, body."""

    __slots__ = ("method", "uri")

    def __init__(self, method: str, uri: Union[SipUri, str],
                 headers: Optional[List[Tuple[str, str]]] = None,
                 body: str = ""):
        super().__init__(headers, body)
        self.method = method.upper()
        self.uri = uri if isinstance(uri, SipUri) else SipUri.parse(uri)

    @property
    def is_request(self) -> bool:
        return True

    def start_line(self) -> str:
        return f"{self.method} {self.uri} {SIP_VERSION}"

    def create_response(self, status: int, reason: Optional[str] = None,
                        to_tag: Optional[str] = None,
                        body: str = "") -> "SipResponse":
        """Build a response per RFC 3261 §8.2.6: copy Via/From/To/Call-ID/CSeq."""
        response = SipResponse(status, reason)
        for via in self.get_all("Via"):
            response.add("Via", via)
        if self.get("From"):
            response.set("From", self.get("From"))
        to_value = self.get("To")
        if to_value is not None:
            to_addr = NameAddr.parse(to_value)
            if to_tag and to_addr.tag is None and status != 100:
                to_addr = to_addr.with_tag(to_tag)
            response.set("To", str(to_addr))
        if self.call_id:
            response.set("Call-ID", self.call_id)
        if self.get("CSeq"):
            response.set("CSeq", self.get("CSeq"))
        response.body = body
        return response

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SipRequest {self.method} {self.uri} cid={self.call_id}>"


class SipResponse(SipMessage):
    """A SIP response: status code, reason phrase, headers, body."""

    __slots__ = ("status", "reason")

    def __init__(self, status: int, reason: Optional[str] = None,
                 headers: Optional[List[Tuple[str, str]]] = None,
                 body: str = ""):
        super().__init__(headers, body)
        self.status = int(status)
        self.reason = reason if reason is not None else reason_phrase(status)

    @property
    def is_request(self) -> bool:
        return False

    @property
    def is_provisional(self) -> bool:
        return 100 <= self.status < 200

    @property
    def is_final(self) -> bool:
        return self.status >= 200

    @property
    def is_success(self) -> bool:
        return 200 <= self.status < 300

    def start_line(self) -> str:
        return f"{SIP_VERSION} {self.status} {self.reason}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SipResponse {self.status} {self.reason} cid={self.call_id}>"


def is_sip_payload(payload: bytes) -> bool:
    """Cheap sniff: does this UDP payload look like a SIP message?

    Used by the vids packet classifier before committing to a full parse.
    """
    if not payload or payload[0] >= 0x80:
        # SIP starts with an ASCII method or version token; RTP/RTCP start
        # with 0x80/0x81 — reject without paying for a UnicodeDecodeError.
        return False
    try:
        head = payload[:64].decode("utf-8", errors="strict")
    except UnicodeDecodeError:
        return False
    if head.startswith(SIP_VERSION + " "):
        return True
    first_word = head.split(" ", 1)[0]
    return first_word in METHODS


#: Head/body separator: a blank line in CRLF, bare-LF, or mixed endings.
_BLANK_LINE = re.compile(r"\r?\n\r?\n")


@lru_cache(maxsize=4096)
def _split_header_line(line: str) -> Tuple[str, str]:
    """Memoized ``"Name: value"`` -> ``(canonical-name, stripped-value)``.

    Header lines repeat heavily — every in-dialog message carries the same
    Call-ID/From/To/Via lines, and retransmissions repeat whole heads — so
    the split + canonicalization is paid once per distinct line.  Malformed
    lines raise :class:`SipParseError`, which ``lru_cache`` does not cache,
    so garbage cannot pollute the memo.
    """
    name, sep, value = line.partition(":")
    if not sep:
        raise SipParseError(f"malformed header line: {line!r}")
    name = name.strip()
    if not name:
        raise SipParseError(f"empty header name: {line!r}")
    return canonical_header_name(name), value.strip()


def parse_message(data: Union[bytes, str]) -> Union[SipRequest, SipResponse]:
    """Parse wire bytes/text into a :class:`SipRequest` or :class:`SipResponse`.

    Raises :class:`SipParseError` on malformed input.  Header line folding
    (continuation lines starting with whitespace) is supported.  Single-pass:
    line endings are handled per line (CRLF or bare LF accepted) without
    first copying the whole text through ``replace``, and the body is kept
    byte-for-byte as it appeared on the wire.
    """
    if isinstance(data, bytes):
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SipParseError("message is not valid UTF-8") from exc
    else:
        text = data
    # Pure-CRLF fast path: when the earliest candidate blank line is a
    # literal CRLFCRLF (no bare-LF blank anywhere, and the only "\n\r\n"
    # is the one inside that separator), the regex would match exactly
    # there — three C-level scans replace the regex walk.
    crlf = text.find("\r\n\r\n")
    if crlf != -1 and "\n\n" not in text and text.find("\n\r\n") == crlf + 1:
        head, body = text[:crlf], text[crlf + 4:]
    else:
        separator = _BLANK_LINE.search(text)
        if separator is not None:
            head, body = text[:separator.start()], text[separator.end():]
        else:
            head, body = text.rstrip("\r\n"), ""
    # One C-level pass strips the CRs from the head (the body is left
    # untouched) instead of an endswith check per header line.
    stray_cr = "\r" in head
    if stray_cr:
        head = head.replace("\r\n", "\n")
        stray_cr = "\r" in head  # lone CRs survive the CRLF replace
    lines = head.split("\n")
    if not lines or not lines[0].strip():
        raise SipParseError("empty message")

    start = lines[0].rstrip()
    if stray_cr or "\n " in head or "\n\t" in head:
        # Rare shapes — folded continuation lines or bare-CR endings — get
        # the normalizing pass; clean heads skip straight to the split.
        header_lines: List[str] = []
        for line in lines[1:]:
            if line.endswith("\r"):
                line = line[:-1]
            if not line:
                continue
            if line[0] in " \t" and header_lines:
                header_lines[-1] += " " + line.strip()
            else:
                header_lines.append(line)
    else:
        header_lines = lines[1:]

    headers: List[Tuple[str, str]] = []
    for line in header_lines:
        if not line:
            continue
        canonical, value = _split_header_line(line)
        # Comma-separated multi-values for Via are split so the list
        # semantics survive round-trips.
        if canonical == "Via" and "," in value:
            for part in value.split(","):
                headers.append((canonical, part.strip()))
        else:
            headers.append((canonical, value))

    if start.startswith(SIP_VERSION + " "):
        rest = start[len(SIP_VERSION) + 1:]
        parts = rest.split(" ", 1)
        try:
            status = int(parts[0])
        except ValueError as exc:
            raise SipParseError(f"bad status line: {start!r}") from exc
        if not 100 <= status <= 699:
            raise SipParseError(f"status code out of range: {status}")
        reason = parts[1] if len(parts) > 1 else reason_phrase(status)
        message: Union[SipRequest, SipResponse] = SipResponse(
            status, reason, headers, body
        )
    else:
        parts = start.split(" ")
        if len(parts) != 3 or parts[2] != SIP_VERSION:
            raise SipParseError(f"bad request line: {start!r}")
        method, uri_text, _ = parts
        if not method.isupper() or not method.isalpha():
            raise SipParseError(f"bad method: {method!r}")
        message = SipRequest(method, SipUri.parse(uri_text), headers, body)
    return message
