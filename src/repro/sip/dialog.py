"""SIP dialog layer (RFC 3261 §12).

A dialog is the peer-to-peer call relationship identified by
(Call-ID, local tag, remote tag).  In the paper's enterprise deployment the
proxies do not record-route, so in-dialog requests (ACK, BYE, re-INVITE)
flow directly between the user agents — exactly the end-to-end signaling
path vids observes at the perimeter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..netsim.address import Endpoint
from .constants import ACK
from .errors import SipProtocolError
from .headers import NameAddr, new_branch
from .message import SipRequest, SipResponse
from .uri import SipUri

__all__ = ["DialogId", "DialogState", "Dialog"]


class DialogId(NamedTuple):
    """The triple that names a dialog."""

    call_id: str
    local_tag: str
    remote_tag: str


class DialogState(enum.Enum):
    """RFC 3261 dialog lifecycle."""

    EARLY = "early"
    CONFIRMED = "confirmed"
    TERMINATED = "terminated"


@dataclass
class Dialog:
    """One side's view of an established (or early) dialog."""

    call_id: str
    local_addr: NameAddr          # our From/To identity including tag
    remote_addr: NameAddr
    remote_target: SipUri         # remote Contact URI: where requests go
    local_cseq: int
    remote_cseq: int
    is_uac: bool
    state: DialogState = DialogState.EARLY
    via_host: str = ""
    via_port: int = 5060

    @property
    def id(self) -> DialogId:
        return DialogId(self.call_id, self.local_addr.tag or "",
                        self.remote_addr.tag or "")

    @property
    def remote_endpoint(self) -> Endpoint:
        """Transport destination for in-dialog requests."""
        return Endpoint(self.remote_target.host, self.remote_target.effective_port)

    def confirm(self) -> None:
        self.state = DialogState.CONFIRMED

    def terminate(self) -> None:
        self.state = DialogState.TERMINATED

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_uac(cls, invite: SipRequest, response: SipResponse,
                 via_host: str, via_port: int) -> "Dialog":
        """Build the caller-side dialog from the INVITE and a 1xx/2xx with tag."""
        contact = response.contact
        remote_target = contact.uri if contact else SipUri.parse(str(invite.uri))
        from_addr = invite.from_
        to_addr = response.to
        if from_addr is None or to_addr is None or invite.call_id is None:
            raise SipProtocolError("INVITE/response lack dialog headers")
        cseq = invite.cseq
        return cls(
            call_id=invite.call_id,
            local_addr=from_addr,
            remote_addr=to_addr,
            remote_target=remote_target,
            local_cseq=cseq.number if cseq else 1,
            remote_cseq=0,
            is_uac=True,
            via_host=via_host,
            via_port=via_port,
        )

    @classmethod
    def from_uas(cls, invite: SipRequest, local_tag: str,
                 via_host: str, via_port: int) -> "Dialog":
        """Build the callee-side dialog from a received INVITE."""
        from_addr = invite.from_
        to_addr = invite.to
        if from_addr is None or to_addr is None or invite.call_id is None:
            raise SipProtocolError("INVITE lacks dialog headers")
        contact = invite.contact
        remote_target = contact.uri if contact else from_addr.uri
        cseq = invite.cseq
        return cls(
            call_id=invite.call_id,
            local_addr=to_addr.with_tag(local_tag),
            remote_addr=from_addr,
            remote_target=remote_target,
            local_cseq=0,
            remote_cseq=cseq.number if cseq else 1,
            is_uac=False,
            via_host=via_host,
            via_port=via_port,
        )

    # -- request building ---------------------------------------------------

    def create_request(self, method: str, body: str = "",
                       content_type: Optional[str] = None) -> SipRequest:
        """Build an in-dialog request (BYE, re-INVITE, ...)."""
        if method != ACK:
            self.local_cseq += 1
        request = SipRequest(method, self.remote_target)
        request.set(
            "Via",
            f"SIP/2.0/UDP {self.via_host}:{self.via_port};branch={new_branch()}",
        )
        request.set("Max-Forwards", 70)
        request.set("From", str(self.local_addr))
        request.set("To", str(self.remote_addr))
        request.set("Call-ID", self.call_id)
        request.set("CSeq", f"{self.local_cseq} {method}")
        request.set(
            "Contact",
            str(NameAddr(SipUri(self.local_addr.uri.user, self.via_host,
                                self.via_port))),
        )
        if body:
            request.body = body
            if content_type:
                request.set("Content-Type", content_type)
        return request

    def create_ack(self, response: SipResponse) -> SipRequest:
        """Build the ACK for a 2xx response (RFC 3261 §13.2.2.4).

        The ACK CSeq number equals the INVITE's, with method ACK.
        """
        ack = SipRequest(ACK, self.remote_target)
        ack.set(
            "Via",
            f"SIP/2.0/UDP {self.via_host}:{self.via_port};branch={new_branch()}",
        )
        ack.set("Max-Forwards", 70)
        ack.set("From", str(self.local_addr))
        ack.set("To", response.get("To") or str(self.remote_addr))
        ack.set("Call-ID", self.call_id)
        cseq = response.cseq
        number = cseq.number if cseq else self.local_cseq
        ack.set("CSeq", f"{number} {ACK}")
        return ack

    def accepts_remote_cseq(self, number: int) -> bool:
        """RFC 3261 §12.2.2: in-dialog request CSeq must increase."""
        if number <= self.remote_cseq:
            return False
        self.remote_cseq = number
        return True
