"""SIP proxy server: registrar + stateless forwarding proxy.

Mirrors the paper's deployment: one proxy per enterprise domain, sitting in
the DMZ.  The proxy "has no media capability and only facilitates the two
end points to discover and contact each other through SIP signaling" — it
forwards requests toward registered contacts (local domain) or toward the
remote domain's proxy (via the :class:`~repro.sip.dns.DomainDirectory`), and
routes responses back along the Via stack.  It does not record-route, so
in-dialog requests and all media bypass it.
"""

from __future__ import annotations

from typing import Optional, Union

import hashlib

from ..netsim.address import Endpoint
from ..netsim.node import Host
from .constants import BRANCH_MAGIC_COOKIE, DEFAULT_SIP_PORT, REGISTER
from .dns import DomainDirectory
from .headers import Via
from .message import SipRequest, SipResponse
from .registrar import LocationService, process_register
from .transport import SipTransport

__all__ = ["ProxyServer"]


class ProxyServer:
    """A stateless forwarding proxy + registrar for one domain."""

    def __init__(
        self,
        host: Host,
        domain: str,
        dns: DomainDirectory,
        port: int = DEFAULT_SIP_PORT,
        location: Optional[LocationService] = None,
        authenticator=None,
    ):
        self.host = host
        self.domain = domain.lower()
        self.dns = dns
        #: When set (a :class:`repro.sip.auth.Authenticator`), REGISTER
        #: requests must carry a valid digest Authorization or are
        #: challenged with 401.
        self.authenticator = authenticator
        self.location = location if location is not None else LocationService()
        self.transport = SipTransport(host, port)
        self.transport.set_handler(self._on_message)
        dns.publish(self.domain, self.transport.local_endpoint)
        self.requests_forwarded = 0
        self.responses_forwarded = 0
        self.requests_rejected = 0

    @property
    def sim(self):
        return self.host.sim

    @property
    def endpoint(self) -> Endpoint:
        return self.transport.local_endpoint

    # -- dispatch ---------------------------------------------------------

    def _on_message(self, message: Union[SipRequest, SipResponse],
                    source: Endpoint) -> None:
        if isinstance(message, SipRequest):
            self._on_request(message, source)
        else:
            self._on_response(message)

    # -- request path --------------------------------------------------------

    def _on_request(self, request: SipRequest, source: Endpoint) -> None:
        if request.method == REGISTER:
            if self.authenticator is not None and \
                    not self.authenticator.verify(request):
                self.transport.send_message(
                    self.authenticator.challenge(request), source)
                return
            response = process_register(request, self.location, self.sim.now)
            self.transport.send_message(response, source)
            return

        max_forwards = request.get("Max-Forwards")
        if max_forwards is not None:
            remaining = int(max_forwards) - 1
            if remaining <= 0:
                self._reject(request, 483)
                return
            request.set("Max-Forwards", remaining)

        destination = self._route(request)
        if destination is None:
            self._reject(request, 404)
            return

        # Stateless forwarding: push our Via so the response returns here.
        # RFC 3261 §16.11: a stateless proxy MUST derive its branch from the
        # incoming request so retransmissions get the same branch — a fresh
        # branch per forward would make every retransmission look like a new
        # transaction downstream.
        request.prepend(
            "Via",
            f"SIP/2.0/UDP {self.host.ip}:{self.transport.port}"
            f";branch={self._stateless_branch(request)}",
        )
        self.requests_forwarded += 1
        self.transport.send_message(request, destination)

    def _route(self, request: SipRequest) -> Optional[Endpoint]:
        """Next hop for a request: local binding or remote domain proxy."""
        uri = request.uri
        if uri.host == self.host.ip:
            # Request-URI already names us; route on the To AOR instead.
            to_addr = request.to
            if to_addr is None:
                return None
            uri = to_addr.uri
        if uri.host.lower() == self.domain:
            contact = self.location.lookup(uri.address_of_record, self.sim.now)
            if contact is None:
                return None
            # Retarget the request at the registered contact.
            request.uri = contact
            return Endpoint(contact.host, contact.effective_port)
        remote = self.dns.resolve(uri.host)
        if remote is not None:
            return remote
        # Last resort: treat the URI host as a literal address.
        if _looks_like_ip(uri.host):
            return Endpoint(uri.host, uri.effective_port)
        return None

    def _stateless_branch(self, request: SipRequest) -> str:
        """Deterministic branch derived from the incoming transaction id.

        CANCEL and non-2xx ACK must carry the *same* branch as the INVITE
        they refer to (RFC 3261 §9.1, §17.1.1.3), so the method component is
        normalized to INVITE for them.
        """
        cseq = request.cseq
        if cseq is not None:
            method = "INVITE" if cseq.method in ("CANCEL", "ACK") else cseq.method
            cseq_part = f"{cseq.number} {method}"
        else:
            cseq_part = ""
        seed = "|".join((
            request.branch or "",
            request.call_id or "",
            cseq_part,
            self.host.ip,
        ))
        digest = hashlib.md5(seed.encode("utf-8")).hexdigest()[:16]
        return f"{BRANCH_MAGIC_COOKIE}{digest}"

    def _reject(self, request: SipRequest, status: int) -> None:
        self.requests_rejected += 1
        if request.method == "ACK":
            return  # never answer an ACK
        response = request.create_response(status)
        via = request.top_via
        if via is None:
            return
        self.transport.send_message(response, Endpoint(via.host, via.port))

    # -- response path -------------------------------------------------------

    def _on_response(self, response: SipResponse) -> None:
        """Pop our Via and forward to the next one (RFC 3261 §16.7)."""
        vias = response.get_all("Via")
        if not vias:
            return
        top = Via.parse(vias[0])
        if top.host != self.host.ip or top.port != self.transport.port:
            # Not ours — misrouted; drop.
            return
        response.remove_first("Via")
        next_via_value = response.get("Via")
        if next_via_value is None:
            return
        next_via = Via.parse(next_via_value)
        self.responses_forwarded += 1
        self.transport.send_message(
            response, Endpoint(next_via.params.get("received") or next_via.host,
                               next_via.port))


def _looks_like_ip(text: str) -> bool:
    parts = text.split(".")
    return len(parts) == 4 and all(part.isdigit() for part in parts)
