"""Static domain resolution (the testbed's DNS stand-in).

The paper: "The outbound proxy server uses the Domain Name System (DNS) to
locate the inbound proxy server at the other domain."  In the simulated
testbed the mapping is static, so DNS is a directory object shared by the
proxies rather than an extra protocol on the wire.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netsim.address import Endpoint

__all__ = ["DomainDirectory"]


class DomainDirectory:
    """domain name -> inbound proxy endpoint."""

    def __init__(self) -> None:
        self._proxies: Dict[str, Endpoint] = {}

    def publish(self, domain: str, proxy: Endpoint) -> None:
        self._proxies[domain.lower()] = proxy

    def resolve(self, domain: str) -> Optional[Endpoint]:
        return self._proxies.get(domain.lower())

    def domains(self) -> list:
        return sorted(self._proxies)
