"""UDP transport binding for SIP elements.

SIP messages are preferred over UDP in the paper ("UDP is preferred over TCP
because of its simplicity and lower transmission delays"); this transport
serializes messages onto the simulated network and parses arriving datagrams,
counting (not raising on) malformed traffic — on a real perimeter, garbage
arrives and must not kill the stack.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from ..netsim.address import Endpoint
from ..netsim.node import Host
from ..netsim.packet import Datagram
from .constants import DEFAULT_SIP_PORT
from .errors import SipError, SipParseError
from .message import SipRequest, SipResponse, parse_message

__all__ = ["MAX_SIP_DATAGRAM", "SipTransport"]

MessageHandler = Callable[[Union[SipRequest, SipResponse], Endpoint], None]

#: Largest datagram the transport will hand to the parser.  The maximum
#: UDP payload over IPv4 (65535 - 8 UDP - 20 IP); anything larger is a
#: reassembly bug or an attack and is dropped with accounting before
#: parsing can amplify it.
MAX_SIP_DATAGRAM = 65_507


class SipTransport:
    """Binds a UDP port on a simulated host and speaks SIP wire format."""

    def __init__(self, host: Host, port: int = DEFAULT_SIP_PORT,
                 max_datagram: int = MAX_SIP_DATAGRAM):
        self.host = host
        self.port = port
        self.max_datagram = max_datagram
        self._handler: Optional[MessageHandler] = None
        self.messages_sent = 0
        self.messages_received = 0
        self.parse_errors = 0
        self.oversize_drops = 0
        self.handler_errors = 0
        #: Malformed-input drops attributed to the claimed source address
        #: (parse failures, oversize datagrams, handler escapes) — the
        #: per-source evidence an operator pivots on when the IDS flags a
        #: fuzzing campaign against this element.
        self.drops_by_source: Dict[str, int] = {}
        host.bind(port, self._on_datagram)

    @property
    def sim(self):
        return self.host.sim

    @property
    def local_endpoint(self) -> Endpoint:
        return Endpoint(self.host.ip, self.port)

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def send_message(self, message: Union[SipRequest, SipResponse],
                     destination: Endpoint) -> None:
        self.messages_sent += 1
        self.host.send_udp(destination, message.serialize(), self.port)

    def _attribute_drop(self, source: Endpoint) -> None:
        ip = source.ip
        self.drops_by_source[ip] = self.drops_by_source.get(ip, 0) + 1

    def _on_datagram(self, datagram: Datagram) -> None:
        if len(datagram.payload) > self.max_datagram:
            self.oversize_drops += 1
            self._attribute_drop(datagram.src)
            return
        try:
            message = parse_message(datagram.payload)
        except SipParseError:
            self.parse_errors += 1
            self._attribute_drop(datagram.src)
            return
        self.messages_received += 1
        if self._handler is not None:
            try:
                self._handler(message, datagram.src)
            except SipError:
                # Wire-parseable but semantically malformed (a corrupted
                # Request-URI, an INVITE whose dialog headers were mangled
                # in transit, ...): real stacks drop or 400 such requests;
                # either way the endpoint must survive them.
                self.parse_errors += 1
                self._attribute_drop(datagram.src)
            except Exception:
                # A handler bug reachable from hostile wire input (the
                # pre-fix escape: float() on a corrupted Expires) must fail
                # closed into accounting, never out of the receive loop.
                self.handler_errors += 1
                self._attribute_drop(datagram.src)

    def close(self) -> None:
        self.host.unbind(self.port)
