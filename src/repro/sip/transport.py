"""UDP transport binding for SIP elements.

SIP messages are preferred over UDP in the paper ("UDP is preferred over TCP
because of its simplicity and lower transmission delays"); this transport
serializes messages onto the simulated network and parses arriving datagrams,
counting (not raising on) malformed traffic — on a real perimeter, garbage
arrives and must not kill the stack.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..netsim.address import Endpoint
from ..netsim.node import Host
from ..netsim.packet import Datagram
from .constants import DEFAULT_SIP_PORT
from .errors import SipError, SipParseError
from .message import SipRequest, SipResponse, parse_message

__all__ = ["SipTransport"]

MessageHandler = Callable[[Union[SipRequest, SipResponse], Endpoint], None]


class SipTransport:
    """Binds a UDP port on a simulated host and speaks SIP wire format."""

    def __init__(self, host: Host, port: int = DEFAULT_SIP_PORT):
        self.host = host
        self.port = port
        self._handler: Optional[MessageHandler] = None
        self.messages_sent = 0
        self.messages_received = 0
        self.parse_errors = 0
        host.bind(port, self._on_datagram)

    @property
    def sim(self):
        return self.host.sim

    @property
    def local_endpoint(self) -> Endpoint:
        return Endpoint(self.host.ip, self.port)

    def set_handler(self, handler: MessageHandler) -> None:
        self._handler = handler

    def send_message(self, message: Union[SipRequest, SipResponse],
                     destination: Endpoint) -> None:
        self.messages_sent += 1
        self.host.send_udp(destination, message.serialize(), self.port)

    def _on_datagram(self, datagram: Datagram) -> None:
        try:
            message = parse_message(datagram.payload)
        except SipParseError:
            self.parse_errors += 1
            return
        self.messages_received += 1
        if self._handler is not None:
            try:
                self._handler(message, datagram.src)
            except SipError:
                # Wire-parseable but semantically malformed (a corrupted
                # Request-URI, an INVITE whose dialog headers were mangled
                # in transit, ...): real stacks drop or 400 such requests;
                # either way the endpoint must survive them.
                self.parse_errors += 1

    def close(self) -> None:
        self.host.unbind(self.port)
