"""SIP transaction layer (RFC 3261 §17) over unreliable (UDP) transport.

Implements the four transaction state machines — INVITE/non-INVITE x
client/server — with the retransmission and timeout timers that make SIP
calls survive the testbed's 0.42 % Internet loss.  The 2xx-retransmission
behaviour of the INVITE server transaction follows the RFC 6026 "ACCEPTED
state" refinement so that 200 OK reliability lives inside the transaction.

The transaction layer talks to:

- a *transport*: any object with ``sim`` (a :class:`~repro.netsim.Simulator`)
  and ``send_message(message, destination)``;
- a *transaction user* (TU): callbacks given at construction time.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Protocol, Tuple

from ..netsim.address import Endpoint
from ..netsim.engine import Timer
from .constants import ACK, CANCEL, INVITE
from .errors import SipProtocolError
from .message import SipRequest, SipResponse
from .timers import DEFAULT_TIMERS, TimerTable

__all__ = [
    "Transport",
    "TransactionState",
    "ClientTransaction",
    "InviteClientTransaction",
    "NonInviteClientTransaction",
    "ServerTransaction",
    "InviteServerTransaction",
    "NonInviteServerTransaction",
    "TransactionManager",
]


class Transport(Protocol):
    """What transactions need from the layer below."""

    @property
    def sim(self): ...

    def send_message(self, message, destination: Endpoint) -> None: ...


class TransactionState(enum.Enum):
    """States of the four RFC 3261 transaction machines (plus RFC 6026's
    ACCEPTED)."""

    CALLING = "calling"
    TRYING = "trying"
    PROCEEDING = "proceeding"
    ACCEPTED = "accepted"      # RFC 6026 (INVITE server with 2xx sent)
    COMPLETED = "completed"
    CONFIRMED = "confirmed"
    TERMINATED = "terminated"


class _TransactionBase:
    """State/timer plumbing shared by all four transaction machines."""

    def __init__(self, transport: Transport, timers: TimerTable):
        self.transport = transport
        self.timers = timers
        self.state: Optional[TransactionState] = None
        self._timer_handles: Dict[str, Timer] = {}
        self.on_terminated: Optional[Callable[["_TransactionBase"], None]] = None

    @property
    def sim(self):
        return self.transport.sim

    def _start_timer(self, name: str, delay: float,
                     callback: Callable[[], None]) -> None:
        handle = self._timer_handles.get(name)
        if handle is not None and handle.callback == callback:
            # Retransmission reset (timers A/E/G/G2xx): re-arm the existing
            # handle instead of allocating a fresh Timer per backoff step.
            handle.reschedule(delay)
            return
        self._cancel_timer(name)
        self._timer_handles[name] = self.sim.schedule(delay, callback,
                                                      label=f"sip-{name}")

    def _cancel_timer(self, name: str) -> None:
        handle = self._timer_handles.pop(name, None)
        if handle is not None:
            handle.cancel()

    def _cancel_all_timers(self) -> None:
        for name in list(self._timer_handles):
            self._cancel_timer(name)

    def _terminate(self) -> None:
        self._cancel_all_timers()
        if self.state is not TransactionState.TERMINATED:
            self.state = TransactionState.TERMINATED
            if self.on_terminated is not None:
                self.on_terminated(self)

    @property
    def terminated(self) -> bool:
        return self.state is TransactionState.TERMINATED


class ClientTransaction(_TransactionBase):
    """Base client transaction: owns the request and the destination."""

    def __init__(
        self,
        transport: Transport,
        request: SipRequest,
        destination: Endpoint,
        on_response: Callable[[SipResponse], None],
        on_timeout: Optional[Callable[[], None]] = None,
        timers: TimerTable = DEFAULT_TIMERS,
    ):
        super().__init__(transport, timers)
        if request.branch is None:
            raise SipProtocolError("client transaction request needs a Via branch")
        self.request = request
        self.destination = destination
        self.on_response = on_response
        self.on_timeout = on_timeout
        self.retransmissions = 0

    @property
    def key(self) -> Tuple[str, str]:
        cseq = self.request.cseq
        return (self.request.branch or "", cseq.method if cseq else self.request.method)

    def start(self) -> None:
        raise NotImplementedError

    def receive_response(self, response: SipResponse) -> None:
        raise NotImplementedError

    def _send_request(self) -> None:
        self.transport.send_message(self.request, self.destination)

    def _timeout(self) -> None:
        self._terminate()
        if self.on_timeout is not None:
            self.on_timeout()


class InviteClientTransaction(ClientTransaction):
    """RFC 3261 §17.1.1."""

    def start(self) -> None:
        self.state = TransactionState.CALLING
        self._send_request()
        self._retransmit_interval = self.timers.t1
        self._start_timer("A", self._retransmit_interval, self._on_timer_a)
        self._start_timer("B", self.timers.timer_b, self._timeout)

    def _on_timer_a(self) -> None:
        if self.state is not TransactionState.CALLING:
            return
        self.retransmissions += 1
        self._send_request()
        self._retransmit_interval *= 2
        self._start_timer("A", self._retransmit_interval, self._on_timer_a)

    def receive_response(self, response: SipResponse) -> None:
        if self.state in (TransactionState.TERMINATED, None):
            return
        if response.is_provisional:
            if self.state is TransactionState.CALLING:
                self.state = TransactionState.PROCEEDING
                self._cancel_timer("A")
            self.on_response(response)
        elif response.is_success:
            # 2xx: the transaction terminates; the TU sends the ACK and
            # handles 200 retransmits at the dialog layer.
            self._terminate()
            self.on_response(response)
        else:
            first_final = self.state in (TransactionState.CALLING,
                                         TransactionState.PROCEEDING)
            self.state = TransactionState.COMPLETED
            self._cancel_timer("A")
            self._cancel_timer("B")
            self._send_ack(response)
            if first_final:
                self._start_timer("D", self.timers.timer_d, self._terminate)
                self.on_response(response)

    def _send_ack(self, response: SipResponse) -> None:
        """ACK for a non-2xx final response (RFC 3261 §17.1.1.3)."""
        ack = SipRequest(ACK, self.request.uri)
        ack.set("Via", self.request.get("Via"))
        ack.set("From", self.request.get("From"))
        to_value = response.get("To") or self.request.get("To")
        ack.set("To", to_value)
        ack.set("Call-ID", self.request.call_id)
        cseq = self.request.cseq
        ack.set("CSeq", f"{cseq.number} {ACK}")
        ack.set("Max-Forwards", 70)
        self.transport.send_message(ack, self.destination)


class NonInviteClientTransaction(ClientTransaction):
    """RFC 3261 §17.1.2."""

    def start(self) -> None:
        self.state = TransactionState.TRYING
        self._send_request()
        self._retransmit_interval = self.timers.t1
        self._start_timer("E", self._retransmit_interval, self._on_timer_e)
        self._start_timer("F", self.timers.timer_f, self._timeout)

    def _on_timer_e(self) -> None:
        if self.state not in (TransactionState.TRYING,
                              TransactionState.PROCEEDING):
            return
        self.retransmissions += 1
        self._send_request()
        if self.state is TransactionState.TRYING:
            self._retransmit_interval = min(self._retransmit_interval * 2,
                                            self.timers.t2)
        else:
            self._retransmit_interval = self.timers.t2
        self._start_timer("E", self._retransmit_interval, self._on_timer_e)

    def receive_response(self, response: SipResponse) -> None:
        if self.state in (TransactionState.TERMINATED, None):
            return
        if response.is_provisional:
            if self.state is TransactionState.TRYING:
                self.state = TransactionState.PROCEEDING
            self.on_response(response)
        else:
            first_final = self.state in (TransactionState.TRYING,
                                         TransactionState.PROCEEDING)
            self.state = TransactionState.COMPLETED
            self._cancel_timer("E")
            self._cancel_timer("F")
            if first_final:
                self._start_timer("K", self.timers.timer_k, self._terminate)
                self.on_response(response)


class ServerTransaction(_TransactionBase):
    """Base server transaction: owns the original request and reply address."""

    def __init__(
        self,
        transport: Transport,
        request: SipRequest,
        source: Endpoint,
        timers: TimerTable = DEFAULT_TIMERS,
    ):
        super().__init__(transport, timers)
        self.request = request
        self.source = source
        self.last_response: Optional[SipResponse] = None

    @property
    def key(self) -> Tuple[str, str, str]:
        via = self.request.top_via
        sent_by = f"{via.host}:{via.port}" if via else ""
        method = self.request.method
        if method == ACK:
            method = INVITE
        return (self.request.branch or "", sent_by, method)

    def _reply_destination(self) -> Endpoint:
        """Responses go to the top Via sent-by address (RFC 3261 §18.2.2)."""
        via = self.request.top_via
        if via is None:
            return self.source
        host = via.params.get("received") or via.host
        return Endpoint(host, via.port)

    def send_response(self, response: SipResponse) -> None:
        raise NotImplementedError

    def receive_retransmission(self, request: SipRequest) -> None:
        """Absorb a request retransmit by replaying the last response."""
        if self.last_response is not None:
            self.transport.send_message(self.last_response,
                                        self._reply_destination())

    def _transmit(self, response: SipResponse) -> None:
        self.last_response = response
        self.transport.send_message(response, self._reply_destination())


class InviteServerTransaction(ServerTransaction):
    """RFC 3261 §17.2.1 with the RFC 6026 ACCEPTED state."""

    def __init__(self, transport, request, source,
                 timers: TimerTable = DEFAULT_TIMERS,
                 on_ack: Optional[Callable[[SipRequest], None]] = None,
                 on_transport_failure: Optional[Callable[[], None]] = None):
        super().__init__(transport, request, source, timers)
        self.state = TransactionState.PROCEEDING
        self.on_ack = on_ack
        self.on_transport_failure = on_transport_failure

    def send_response(self, response: SipResponse) -> None:
        if self.state is TransactionState.TERMINATED:
            return
        if response.is_provisional:
            if self.state is TransactionState.PROCEEDING:
                self._transmit(response)
            return
        if response.is_success:
            self.state = TransactionState.ACCEPTED
            self._transmit(response)
            self._retransmit_interval = self.timers.t1
            self._start_timer("G2xx", self._retransmit_interval,
                              self._on_2xx_retransmit)
            self._start_timer("H", self.timers.timer_h, self._ack_timeout)
        else:
            self.state = TransactionState.COMPLETED
            self._transmit(response)
            self._retransmit_interval = self.timers.t1
            self._start_timer("G", self._retransmit_interval, self._on_timer_g)
            self._start_timer("H", self.timers.timer_h, self._ack_timeout)

    def _on_timer_g(self) -> None:
        if self.state is not TransactionState.COMPLETED:
            return
        if self.last_response is not None:
            self.transport.send_message(self.last_response,
                                        self._reply_destination())
        self._retransmit_interval = min(self._retransmit_interval * 2,
                                        self.timers.t2)
        self._start_timer("G", self._retransmit_interval, self._on_timer_g)

    def _on_2xx_retransmit(self) -> None:
        if self.state is not TransactionState.ACCEPTED:
            return
        if self.last_response is not None:
            self.transport.send_message(self.last_response,
                                        self._reply_destination())
        self._retransmit_interval = min(self._retransmit_interval * 2,
                                        self.timers.t2)
        self._start_timer("G2xx", self._retransmit_interval,
                          self._on_2xx_retransmit)

    def _ack_timeout(self) -> None:
        self._terminate()
        if self.on_transport_failure is not None:
            self.on_transport_failure()

    def receive_ack(self, ack: SipRequest) -> None:
        if self.state is TransactionState.COMPLETED:
            self.state = TransactionState.CONFIRMED
            self._cancel_timer("G")
            self._cancel_timer("H")
            self._start_timer("I", self.timers.timer_i, self._terminate)
        elif self.state is TransactionState.ACCEPTED:
            self._cancel_timer("G2xx")
            self._cancel_timer("H")
            self._terminate()
            if self.on_ack is not None:
                self.on_ack(ack)

    def receive_retransmission(self, request: SipRequest) -> None:
        if self.state in (TransactionState.PROCEEDING,
                          TransactionState.COMPLETED,
                          TransactionState.ACCEPTED):
            super().receive_retransmission(request)


class NonInviteServerTransaction(ServerTransaction):
    """RFC 3261 §17.2.2."""

    def __init__(self, transport, request, source,
                 timers: TimerTable = DEFAULT_TIMERS):
        super().__init__(transport, request, source, timers)
        self.state = TransactionState.TRYING

    def send_response(self, response: SipResponse) -> None:
        if self.state is TransactionState.TERMINATED:
            return
        if response.is_provisional:
            self.state = TransactionState.PROCEEDING
            self._transmit(response)
        else:
            self.state = TransactionState.COMPLETED
            self._transmit(response)
            self._start_timer("J", self.timers.timer_j, self._terminate)


class TransactionManager:
    """Routes incoming messages to transactions; creates server transactions.

    The TU supplies two callbacks:

    - ``on_request(request, source, server_transaction)`` for new requests
      (``server_transaction`` is None for 2xx-matching ACKs, which bypass the
      transaction layer per RFC 3261);
    - ``on_stray_response(response, source)`` for responses matching no
      client transaction (proxies forward these statelessly).
    """

    def __init__(
        self,
        transport: Transport,
        on_request: Callable[[SipRequest, Endpoint, Optional[ServerTransaction]], None],
        on_stray_response: Optional[Callable[[SipResponse, Endpoint], None]] = None,
        timers: TimerTable = DEFAULT_TIMERS,
    ):
        self.transport = transport
        self.timers = timers
        self.on_request = on_request
        self.on_stray_response = on_stray_response
        self.client_transactions: Dict[Tuple[str, str], ClientTransaction] = {}
        self.server_transactions: Dict[Tuple[str, str, str], ServerTransaction] = {}

    # -- client side --------------------------------------------------------

    def send_request(
        self,
        request: SipRequest,
        destination: Endpoint,
        on_response: Callable[[SipResponse], None],
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> ClientTransaction:
        """Create, register, and start the right client transaction."""
        cls = (InviteClientTransaction if request.method == INVITE
               else NonInviteClientTransaction)
        transaction = cls(self.transport, request, destination,
                          on_response, on_timeout, timers=self.timers)
        self.client_transactions[transaction.key] = transaction
        transaction.on_terminated = self._client_terminated
        transaction.start()
        return transaction

    def _client_terminated(self, transaction: "_TransactionBase") -> None:
        assert isinstance(transaction, ClientTransaction)
        self.client_transactions.pop(transaction.key, None)

    def _server_terminated(self, transaction: "_TransactionBase") -> None:
        assert isinstance(transaction, ServerTransaction)
        self.server_transactions.pop(transaction.key, None)

    # -- dispatch -------------------------------------------------------------

    def handle_response(self, response: SipResponse, source: Endpoint) -> None:
        branch = response.branch
        cseq = response.cseq
        if branch and cseq:
            transaction = self.client_transactions.get((branch, cseq.method))
            if transaction is not None:
                transaction.receive_response(response)
                return
        if self.on_stray_response is not None:
            self.on_stray_response(response, source)

    def handle_request(self, request: SipRequest, source: Endpoint) -> None:
        via = request.top_via
        sent_by = f"{via.host}:{via.port}" if via else ""
        method = request.method
        lookup_method = INVITE if method == ACK else method
        key = (request.branch or "", sent_by, lookup_method)
        existing = self.server_transactions.get(key)

        if method == ACK:
            if isinstance(existing, InviteServerTransaction):
                existing.receive_ack(request)
                if existing.state is TransactionState.TERMINATED and \
                        existing.on_ack is None:
                    # 2xx ACK with no transaction hook: give it to the TU.
                    self.on_request(request, source, None)
            else:
                # ACK for a 2xx whose transaction is gone: TU handles it.
                self.on_request(request, source, None)
            return

        if existing is not None and existing.request.method == method:
            existing.receive_retransmission(request)
            return

        if method == INVITE:
            transaction: ServerTransaction = InviteServerTransaction(
                self.transport, request, source, timers=self.timers)
        else:
            transaction = NonInviteServerTransaction(
                self.transport, request, source, timers=self.timers)
        transaction.on_terminated = self._server_terminated
        self.server_transactions[transaction.key] = transaction
        self.on_request(request, source, transaction)

    def find_invite_server_transaction(
        self, cancel: SipRequest
    ) -> Optional[InviteServerTransaction]:
        """Locate the INVITE server transaction a CANCEL targets.

        Per RFC 3261 §9.2 the CANCEL matches by the same branch/sent-by as
        the INVITE it cancels.
        """
        if cancel.method != CANCEL:
            raise SipProtocolError("not a CANCEL request")
        via = cancel.top_via
        sent_by = f"{via.host}:{via.port}" if via else ""
        key = (cancel.branch or "", sent_by, INVITE)
        transaction = self.server_transactions.get(key)
        if isinstance(transaction, InviteServerTransaction):
            return transaction
        return None
