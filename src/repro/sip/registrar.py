"""Location service and registrar logic (RFC 3261 §10).

The paper's inbound proxy "consults a location service database to find out
the current location of UA-B"; this module is that database plus the
REGISTER handling that populates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .errors import SipProtocolError
from .headers import NameAddr
from .message import SipRequest, SipResponse
from .uri import SipUri

__all__ = ["Binding", "LocationService", "process_register"]

DEFAULT_EXPIRES = 3600.0


@dataclass
class Binding:
    """One registered contact for an address-of-record."""

    contact: SipUri
    expires_at: float


class LocationService:
    """address-of-record -> current contact binding."""

    def __init__(self) -> None:
        self._bindings: Dict[str, Binding] = {}

    def register(self, aor: str, contact: SipUri, expires_at: float) -> None:
        self._bindings[aor] = Binding(contact, expires_at)

    def unregister(self, aor: str) -> None:
        self._bindings.pop(aor, None)

    def lookup(self, aor: str, now: float) -> Optional[SipUri]:
        """Current contact for ``aor``, honouring expiry."""
        binding = self._bindings.get(aor)
        if binding is None:
            return None
        if binding.expires_at < now:
            del self._bindings[aor]
            return None
        return binding.contact

    def __len__(self) -> int:
        return len(self._bindings)


def process_register(request: SipRequest, location: LocationService,
                     now: float) -> SipResponse:
    """Apply a REGISTER to the location service and build the response."""
    if request.method != "REGISTER":
        raise SipProtocolError("process_register needs a REGISTER request")
    to_addr = request.to
    if to_addr is None:
        return request.create_response(400, "Missing To")
    aor = to_addr.uri.address_of_record

    contact_value = request.get("Contact")
    if contact_value is None:
        # Query: no change, report current binding below.
        pass
    elif contact_value.strip() == "*":
        location.unregister(aor)
    else:
        contact = NameAddr.parse(contact_value)
        expires_text = contact.params.get("expires") or request.get("Expires")
        if expires_text:
            # Wire input: a corrupted Expires ("36\x0200") must produce a
            # 400, not a ValueError out of the receive loop.  Non-finite
            # values ("inf", "nan") would register a contact forever or
            # poison the expiry comparison, so they are rejected too.
            try:
                expires = float(expires_text)
            except ValueError:
                return request.create_response(400, "Bad Expires")
            if not math.isfinite(expires):
                return request.create_response(400, "Bad Expires")
        else:
            expires = DEFAULT_EXPIRES
        if expires <= 0:
            location.unregister(aor)
        else:
            location.register(aor, contact.uri, now + expires)

    response = request.create_response(200)
    current = location.lookup(aor, now)
    if current is not None:
        response.set("Contact", str(NameAddr(current)))
    return response
