"""SIP protocol constants (RFC 3261 subset).

The six base methods are exactly those the paper lists in Section 2.1:
INVITE, ACK, BYE, CANCEL, REGISTER and OPTIONS.
"""

from __future__ import annotations

__all__ = [
    "SIP_VERSION",
    "DEFAULT_SIP_PORT",
    "METHODS",
    "INVITE",
    "ACK",
    "BYE",
    "CANCEL",
    "REGISTER",
    "OPTIONS",
    "REASON_PHRASES",
    "reason_phrase",
    "BRANCH_MAGIC_COOKIE",
]

SIP_VERSION = "SIP/2.0"
DEFAULT_SIP_PORT = 5060

INVITE = "INVITE"
ACK = "ACK"
BYE = "BYE"
CANCEL = "CANCEL"
REGISTER = "REGISTER"
OPTIONS = "OPTIONS"

#: The six base SIP methods of RFC 3261.
METHODS = (INVITE, ACK, BYE, CANCEL, REGISTER, OPTIONS)

#: RFC 3261 mandates that branch parameters start with this cookie.
BRANCH_MAGIC_COOKIE = "z9hG4bK"

REASON_PHRASES = {
    100: "Trying",
    180: "Ringing",
    181: "Call Is Being Forwarded",
    183: "Session Progress",
    200: "OK",
    202: "Accepted",
    301: "Moved Permanently",
    302: "Moved Temporarily",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    415: "Unsupported Media Type",
    420: "Bad Extension",
    480: "Temporarily Unavailable",
    481: "Call/Transaction Does Not Exist",
    482: "Loop Detected",
    483: "Too Many Hops",
    486: "Busy Here",
    487: "Request Terminated",
    488: "Not Acceptable Here",
    500: "Server Internal Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Server Time-out",
    600: "Busy Everywhere",
    603: "Decline",
    604: "Does Not Exist Anywhere",
    606: "Not Acceptable",
}


def reason_phrase(status: int) -> str:
    """Canonical reason phrase for ``status`` (generic fallback per class)."""
    if status in REASON_PHRASES:
        return REASON_PHRASES[status]
    generic = {1: "Trying", 2: "OK", 3: "Redirect", 4: "Client Error",
               5: "Server Error", 6: "Global Failure"}
    return generic.get(status // 100, "Unknown")
