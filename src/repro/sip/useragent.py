"""SIP user agent: the UAC/UAS core driving calls end to end.

"Each UA is a combination of two entities, the user agent client (UAC) and
the user agent server (UAS).  The UA switches back and forth between being
an UAC and an UAS." (paper §2.1).  This module implements that core on top
of the transaction layer: registration, outgoing INVITE with SDP offer,
ringing/answer on the callee side, ACK, CANCEL, BYE, and re-INVITE, with
dialogs tracked per RFC 3261 §12.

The higher-level "phone" behaviour (when to ring, when to answer, RTP
streaming) lives in :mod:`repro.telephony.phone`; the hooks here are plain
callbacks so the UA stays a protocol engine.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Union

from ..netsim.address import Endpoint
from ..netsim.node import Host
from .auth import DigestChallenge, DigestCredentials, build_authorization
from .constants import ACK, BYE, CANCEL, DEFAULT_SIP_PORT, INVITE, REGISTER
from .dialog import Dialog, DialogId, DialogState
from .headers import NameAddr, new_branch, new_call_id, new_tag
from .message import SipRequest, SipResponse
from .sdp import SDP_CONTENT_TYPE, SessionDescription
from .timers import DEFAULT_TIMERS, TimerTable
from .transaction import (
    InviteServerTransaction,
    ServerTransaction,
    TransactionManager,
)
from .transport import SipTransport
from .uri import SipUri

__all__ = ["CallState", "Call", "UserAgent"]


class CallState(enum.Enum):
    """Lifecycle of one call leg as the UA sees it."""

    INIT = "init"
    CALLING = "calling"          # UAC: INVITE sent
    INCOMING = "incoming"        # UAS: INVITE received
    RINGING = "ringing"          # 180 seen/sent
    ESTABLISHED = "established"  # 200 + ACK exchanged
    TERMINATED = "terminated"    # normal BYE completion
    CANCELLED = "cancelled"      # CANCEL / 487
    FAILED = "failed"            # non-2xx final or timeout


class Call:
    """One call leg as seen by this user agent (caller or callee side)."""

    def __init__(self, ua: "UserAgent", is_caller: bool, call_id: str):
        self.ua = ua
        self.is_caller = is_caller
        self.call_id = call_id
        self.state = CallState.INIT
        self.dialog: Optional[Dialog] = None
        self.local_sdp: Optional[SessionDescription] = None
        self.remote_sdp: Optional[SessionDescription] = None
        self.invite_request: Optional[SipRequest] = None
        self.server_transaction: Optional[InviteServerTransaction] = None
        self.created_at = ua.sim.now
        self.invite_sent_at: Optional[float] = None
        self.ringing_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.end_reason: Optional[str] = None
        # Application hooks (set by the phone layer).
        self.on_ringing: Optional[Callable[["Call"], None]] = None
        self.on_established: Optional[Callable[["Call"], None]] = None
        self.on_terminated: Optional[Callable[["Call", str], None]] = None

    @property
    def setup_delay(self) -> Optional[float]:
        """INVITE-sent to 180-received interval: the paper's call setup time."""
        if self.invite_sent_at is None or self.ringing_at is None:
            return None
        return self.ringing_at - self.invite_sent_at

    @property
    def active(self) -> bool:
        return self.state in (CallState.CALLING, CallState.INCOMING,
                              CallState.RINGING, CallState.ESTABLISHED)

    # -- caller-side actions -------------------------------------------------

    def hangup(self) -> None:
        """Terminate the call: BYE if established, CANCEL if still pending."""
        if self.state is CallState.ESTABLISHED:
            self.ua._send_bye(self)
        elif self.is_caller and self.state in (CallState.CALLING,
                                               CallState.RINGING):
            self.ua._send_cancel(self)

    # -- callee-side actions -------------------------------------------------

    def ring(self) -> None:
        """Send 180 Ringing (callee side)."""
        self.ua._uas_ring(self)

    def accept(self, sdp: Optional[SessionDescription] = None) -> None:
        """Answer with 200 OK (callee side)."""
        self.ua._uas_accept(self, sdp)

    def reject(self, status: int = 486) -> None:
        """Refuse the call with a final failure response (callee side)."""
        self.ua._uas_reject(self, status)

    # -- bookkeeping -----------------------------------------------------------

    def _finish(self, state: CallState, reason: str) -> None:
        if self.state in (CallState.TERMINATED, CallState.CANCELLED,
                          CallState.FAILED):
            return
        self.state = state
        self.ended_at = self.ua.sim.now
        self.end_reason = reason
        if self.dialog is not None:
            self.dialog.terminate()
        if self.on_terminated is not None:
            self.on_terminated(self, reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "caller" if self.is_caller else "callee"
        return f"<Call {self.call_id} {role} {self.state.value}>"


class UserAgent:
    """A SIP user agent bound to one simulated host."""

    def __init__(
        self,
        host: Host,
        aor: Union[SipUri, str],
        outbound_proxy: Endpoint,
        port: int = DEFAULT_SIP_PORT,
        display_name: Optional[str] = None,
        timers: TimerTable = DEFAULT_TIMERS,
    ):
        self.host = host
        self.aor = aor if isinstance(aor, SipUri) else SipUri.parse(aor)
        self.display_name = display_name
        self.outbound_proxy = outbound_proxy
        self.transport = SipTransport(host, port)
        self.manager = TransactionManager(
            self.transport,
            on_request=self._on_request,
            on_stray_response=self._on_stray_response,
            timers=timers,
        )
        self.transport.set_handler(self._dispatch)
        self.calls: Dict[str, Call] = {}         # call-id -> call
        self.dialogs: Dict[DialogId, Call] = {}
        self.registered = False
        #: Digest credentials used to answer 401 challenges (registrar auth).
        self.credentials: Optional[DigestCredentials] = None
        #: Application hook: invoked with the new Call on incoming INVITE.
        self.on_incoming_call: Optional[Callable[[Call], None]] = None

    @property
    def sim(self):
        return self.host.sim

    @property
    def contact_uri(self) -> SipUri:
        return SipUri(self.aor.user, self.host.ip, self.transport.port)

    def _dispatch(self, message, source: Endpoint) -> None:
        if isinstance(message, SipRequest):
            self.manager.handle_request(message, source)
        else:
            self.manager.handle_response(message, source)

    # -- registration ------------------------------------------------------

    def register(self, expires: float = 3600.0,
                 on_done: Optional[Callable[[bool], None]] = None) -> None:
        """REGISTER the contact with the domain registrar (outbound proxy)."""
        request = SipRequest(REGISTER, SipUri(None, self.aor.host))
        self._stamp_request(request)
        request.set("To", str(NameAddr(self.aor)))
        request.set("From", str(NameAddr(self.aor).with_tag(new_tag())))
        request.set("Call-ID", new_call_id(self.host.ip))
        request.set("CSeq", f"1 {REGISTER}")
        request.set("Contact", str(NameAddr(self.contact_uri)))
        request.set("Expires", int(expires))

        def on_response(response: SipResponse) -> None:
            if response.status == 401 and self.credentials is not None:
                retry = self._answer_challenge(request, response)
                if retry is not None:
                    self.manager.send_request(retry, self.outbound_proxy,
                                              on_final, on_timeout)
                    return
            on_final(response)

        def on_final(response: SipResponse) -> None:
            self.registered = response.is_success
            if on_done is not None:
                on_done(response.is_success)

        def on_timeout() -> None:
            if on_done is not None:
                on_done(False)

        self.manager.send_request(request, self.outbound_proxy,
                                  on_response, on_timeout)

    def _answer_challenge(self, original: SipRequest,
                          response: SipResponse) -> Optional[SipRequest]:
        """Rebuild ``original`` with an Authorization answering a 401."""
        challenge_value = response.get("WWW-Authenticate")
        if challenge_value is None or self.credentials is None:
            return None
        try:
            challenge = DigestChallenge.parse(challenge_value)
        except Exception:
            return None
        retry = SipRequest(original.method, original.uri,
                           body=original.body)
        retry.headers = [(k, v) for k, v in original.headers
                         if k not in ("Via", "CSeq", "Authorization")]
        self._stamp_request(retry)        # fresh branch
        cseq = original.cseq
        retry.set("CSeq", f"{(cseq.number if cseq else 1) + 1} "
                          f"{original.method}")
        retry.set("Authorization", build_authorization(
            self.credentials, challenge, original.method,
            str(original.uri)))
        return retry

    # -- outgoing calls --------------------------------------------------------

    def invite(self, remote: Union[SipUri, str],
               sdp: SessionDescription) -> Call:
        """Start a call to ``remote`` with an SDP offer; returns the Call."""
        remote_uri = remote if isinstance(remote, SipUri) else SipUri.parse(remote)
        call_id = new_call_id(self.host.ip)
        call = Call(self, is_caller=True, call_id=call_id)
        call.local_sdp = sdp
        self.calls[call_id] = call

        request = SipRequest(INVITE, remote_uri, body=sdp.serialize())
        self._stamp_request(request)
        request.set("From", str(self._local_name_addr().with_tag(new_tag())))
        request.set("To", str(NameAddr(remote_uri)))
        request.set("Call-ID", call_id)
        request.set("CSeq", f"1 {INVITE}")
        request.set("Contact", str(NameAddr(self.contact_uri)))
        request.set("Content-Type", SDP_CONTENT_TYPE)
        call.invite_request = request
        call.state = CallState.CALLING
        call.invite_sent_at = self.sim.now

        self.manager.send_request(
            request,
            self.outbound_proxy,
            on_response=lambda response: self._uac_response(call, response),
            on_timeout=lambda: call._finish(CallState.FAILED, "invite-timeout"),
        )
        return call

    def _uac_response(self, call: Call, response: SipResponse) -> None:
        if response.is_provisional:
            if response.status == 180 and call.state is CallState.CALLING:
                call.state = CallState.RINGING
                call.ringing_at = self.sim.now
                if call.on_ringing is not None:
                    call.on_ringing(call)
            return
        if response.is_success:
            self._uac_established(call, response)
        elif response.status == 487:
            call._finish(CallState.CANCELLED, "cancelled")
        else:
            call._finish(CallState.FAILED, f"rejected-{response.status}")

    def _uac_established(self, call: Call, response: SipResponse) -> None:
        if call.invite_request is None:
            return
        dialog = Dialog.from_uac(call.invite_request, response,
                                 self.host.ip, self.transport.port)
        dialog.local_cseq = 1
        dialog.confirm()
        call.dialog = dialog
        self.dialogs[dialog.id] = call
        if response.body:
            call.remote_sdp = SessionDescription.parse(response.body)
        ack = dialog.create_ack(response)
        self.transport.send_message(ack, dialog.remote_endpoint)
        call.state = CallState.ESTABLISHED
        call.established_at = self.sim.now
        if call.on_established is not None:
            call.on_established(call)

    def _send_cancel(self, call: Call) -> None:
        """CANCEL a pending INVITE (RFC 3261 §9.1: mirror the INVITE's Via)."""
        invite = call.invite_request
        if invite is None:
            return
        cancel = SipRequest(CANCEL, invite.uri)
        cancel.set("Via", invite.get("Via"))
        cancel.set("Max-Forwards", 70)
        cancel.set("From", invite.get("From"))
        cancel.set("To", invite.get("To"))
        cancel.set("Call-ID", invite.call_id)
        cseq = invite.cseq
        cancel.set("CSeq", f"{cseq.number} {CANCEL}")
        self.manager.send_request(cancel, self.outbound_proxy,
                                  on_response=lambda response: None)

    def _send_bye(self, call: Call) -> None:
        dialog = call.dialog
        if dialog is None or dialog.state is not DialogState.CONFIRMED:
            return
        bye = dialog.create_request(BYE)

        def on_response(response: SipResponse) -> None:
            call._finish(CallState.TERMINATED, "local-bye")

        def on_timeout() -> None:
            call._finish(CallState.TERMINATED, "bye-timeout")

        self.manager.send_request(bye, dialog.remote_endpoint,
                                  on_response, on_timeout)

    # -- incoming requests ---------------------------------------------------

    def _on_request(self, request: SipRequest, source: Endpoint,
                    transaction: Optional[ServerTransaction]) -> None:
        method = request.method
        if method == INVITE:
            to_addr = request.to
            if to_addr is not None and to_addr.tag:
                self._uas_reinvite(request, transaction)
            else:
                self._uas_new_invite(request, transaction)
        elif method == ACK:
            self._uas_ack(request)
        elif method == BYE:
            self._uas_bye(request, transaction)
        elif method == CANCEL:
            self._uas_cancel(request, transaction)
        elif method == "OPTIONS":
            # Capability query / keepalive ping (RFC 3261 §11).
            if transaction is not None:
                response = request.create_response(200, to_tag=new_tag())
                response.set("Allow", "INVITE, ACK, BYE, CANCEL, OPTIONS")
                response.set("Accept", "application/sdp")
                transaction.send_response(response)
        else:
            if transaction is not None:
                transaction.send_response(request.create_response(501))

    def _uas_new_invite(self, request: SipRequest,
                        transaction: Optional[ServerTransaction]) -> None:
        if not isinstance(transaction, InviteServerTransaction):
            return
        call_id = request.call_id or new_call_id(self.host.ip)
        if call_id in self.calls and self.calls[call_id].active:
            # Retransmission already absorbed by the transaction layer;
            # a *different* INVITE reusing a live Call-ID is rejected.
            transaction.send_response(request.create_response(482))
            return
        call = Call(self, is_caller=False, call_id=call_id)
        call.invite_request = request
        call.server_transaction = transaction
        call.state = CallState.INCOMING
        self.calls[call_id] = call
        local_tag = new_tag()
        dialog = Dialog.from_uas(request, local_tag,
                                 self.host.ip, self.transport.port)
        call.dialog = dialog
        self.dialogs[dialog.id] = call
        if request.body:
            call.remote_sdp = SessionDescription.parse(request.body)
        transaction.on_ack = lambda ack: self._uas_established(call)
        if self.on_incoming_call is not None:
            self.on_incoming_call(call)
        else:
            # No application attached: behave like an unattended phone.
            transaction.send_response(
                request.create_response(480, to_tag=local_tag))
            call._finish(CallState.FAILED, "no-application")

    def _uas_ring(self, call: Call) -> None:
        transaction = call.server_transaction
        if transaction is None or call.invite_request is None or \
                call.dialog is None:
            return
        if call.state is not CallState.INCOMING:
            return
        response = call.invite_request.create_response(
            180, to_tag=call.dialog.local_addr.tag)
        response.set("Contact", str(NameAddr(self.contact_uri)))
        transaction.send_response(response)
        call.state = CallState.RINGING
        call.ringing_at = self.sim.now

    def _uas_accept(self, call: Call,
                    sdp: Optional[SessionDescription]) -> None:
        transaction = call.server_transaction
        if transaction is None or call.invite_request is None or \
                call.dialog is None:
            return
        if call.state not in (CallState.INCOMING, CallState.RINGING):
            return
        if sdp is not None:
            call.local_sdp = sdp
        body = call.local_sdp.serialize() if call.local_sdp else ""
        response = call.invite_request.create_response(
            200, to_tag=call.dialog.local_addr.tag, body=body)
        response.set("Contact", str(NameAddr(self.contact_uri)))
        if body:
            response.set("Content-Type", SDP_CONTENT_TYPE)
        transaction.send_response(response)
        # ESTABLISHED is entered when the ACK arrives (transaction on_ack).

    def _uas_reject(self, call: Call, status: int) -> None:
        transaction = call.server_transaction
        if transaction is None or call.invite_request is None:
            return
        tag = call.dialog.local_addr.tag if call.dialog else new_tag()
        transaction.send_response(
            call.invite_request.create_response(status, to_tag=tag))
        call._finish(CallState.FAILED, f"rejected-{status}")

    def _uas_established(self, call: Call) -> None:
        if call.state in (CallState.INCOMING, CallState.RINGING):
            if call.dialog is not None:
                call.dialog.confirm()
                call.dialog.local_cseq = 0
            call.state = CallState.ESTABLISHED
            call.established_at = self.sim.now
            if call.on_established is not None:
                call.on_established(call)

    def _uas_ack(self, request: SipRequest) -> None:
        """A 2xx ACK delivered to the TU.

        Per RFC 3261 §17.2.3 the ACK for a 2xx carries its own branch, so it
        never matches the INVITE server transaction — the TU correlates it
        via the dialog and must stop the 200 retransmissions itself.
        """
        call = self._find_dialog_call(request)
        if call is None:
            return
        transaction = call.server_transaction
        if transaction is not None and not transaction.terminated:
            # Quenches the 2xx retransmit timer and fires on_ack, which
            # marks the call established.
            transaction.receive_ack(request)
        else:
            self._uas_established(call)

    def _uas_bye(self, request: SipRequest,
                 transaction: Optional[ServerTransaction]) -> None:
        call = self._find_dialog_call(request)
        if call is None or call.dialog is None:
            if transaction is not None:
                transaction.send_response(request.create_response(481))
            return
        cseq = request.cseq
        if cseq is not None and not call.dialog.accepts_remote_cseq(cseq.number):
            if transaction is not None:
                transaction.send_response(request.create_response(500))
            return
        if transaction is not None:
            transaction.send_response(request.create_response(200))
        call._finish(CallState.TERMINATED, "remote-bye")

    def _uas_cancel(self, request: SipRequest,
                    transaction: Optional[ServerTransaction]) -> None:
        invite_transaction = self.manager.find_invite_server_transaction(request)
        if invite_transaction is None:
            if transaction is not None:
                transaction.send_response(request.create_response(481))
            return
        if transaction is not None:
            transaction.send_response(request.create_response(200))
        original = invite_transaction.request
        call = self.calls.get(original.call_id or "")
        if call is not None and call.state in (CallState.INCOMING,
                                               CallState.RINGING):
            tag = (call.dialog.local_addr.tag if call.dialog else new_tag())
            invite_transaction.send_response(
                original.create_response(487, to_tag=tag))
            call._finish(CallState.CANCELLED, "remote-cancel")

    def _uas_reinvite(self, request: SipRequest,
                      transaction: Optional[ServerTransaction]) -> None:
        call = self._find_dialog_call(request)
        if call is None or call.dialog is None or not isinstance(
                transaction, InviteServerTransaction):
            if transaction is not None:
                transaction.send_response(request.create_response(481))
            return
        cseq = request.cseq
        if cseq is not None and not call.dialog.accepts_remote_cseq(cseq.number):
            transaction.send_response(request.create_response(500))
            return
        # Accept the session update: answer with our current SDP.
        if request.body:
            call.remote_sdp = SessionDescription.parse(request.body)
        contact = request.contact
        if contact is not None:
            call.dialog.remote_target = contact.uri
        body = call.local_sdp.serialize() if call.local_sdp else ""
        response = request.create_response(200, body=body)
        response.set("Contact", str(NameAddr(self.contact_uri)))
        if body:
            response.set("Content-Type", SDP_CONTENT_TYPE)
        transaction.on_ack = lambda ack: None
        transaction.send_response(response)

    # -- dialog lookup ---------------------------------------------------------

    def _find_dialog_call(self, request: SipRequest) -> Optional[Call]:
        to_addr = request.to
        from_addr = request.from_
        if to_addr is None or from_addr is None or request.call_id is None:
            return None
        dialog_id = DialogId(request.call_id, to_addr.tag or "",
                             from_addr.tag or "")
        return self.dialogs.get(dialog_id)

    def _on_stray_response(self, response: SipResponse,
                           source: Endpoint) -> None:
        """Handle 200 retransmissions for INVITE after our ACK was lost."""
        cseq = response.cseq
        if cseq is None or cseq.method != INVITE or not response.is_success:
            return
        to_addr = response.to
        from_addr = response.from_
        if to_addr is None or from_addr is None or response.call_id is None:
            return
        dialog_id = DialogId(response.call_id, from_addr.tag or "",
                             to_addr.tag or "")
        call = self.dialogs.get(dialog_id)
        if call is not None and call.dialog is not None and call.is_caller:
            ack = call.dialog.create_ack(response)
            self.transport.send_message(ack, call.dialog.remote_endpoint)

    # -- helpers -------------------------------------------------------------

    def _local_name_addr(self) -> NameAddr:
        return NameAddr(self.aor, self.display_name)

    def _stamp_request(self, request: SipRequest) -> None:
        request.set(
            "Via",
            f"SIP/2.0/UDP {self.host.ip}:{self.transport.port}"
            f";branch={new_branch()}",
        )
        request.set("Max-Forwards", 70)
