"""RFC 3261 transaction timer values.

All timers derive from T1 (RTT estimate), T2 (maximum retransmit interval)
and T4 (maximum lifetime of a message in the network).  A
:class:`TimerTable` bundles them so tests can shrink the constants and keep
simulated scenarios short without changing protocol logic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimerTable", "DEFAULT_TIMERS"]


@dataclass(frozen=True)
class TimerTable:
    """SIP timer constants (seconds)."""

    t1: float = 0.5
    t2: float = 4.0
    t4: float = 5.0

    @property
    def timer_b(self) -> float:
        """INVITE client transaction timeout (64*T1)."""
        return 64 * self.t1

    @property
    def timer_d(self) -> float:
        """Wait time for response retransmits in COMPLETED (client INVITE).

        RFC 3261 says "at least 32 seconds" for UDP; expressed as 64*T1 so it
        scales with the rest of the table (32 s at default T1).
        """
        return 64 * self.t1

    @property
    def timer_f(self) -> float:
        """Non-INVITE client transaction timeout (64*T1)."""
        return 64 * self.t1

    @property
    def timer_h(self) -> float:
        """Wait time for ACK receipt (server INVITE, 64*T1)."""
        return 64 * self.t1

    @property
    def timer_i(self) -> float:
        """Wait time for ACK retransmits in CONFIRMED (T4)."""
        return self.t4

    @property
    def timer_j(self) -> float:
        """Wait time for request retransmits (non-INVITE server, 64*T1)."""
        return 64 * self.t1

    @property
    def timer_k(self) -> float:
        """Wait time for response retransmits (non-INVITE client, T4)."""
        return self.t4

    def scaled(self, factor: float) -> "TimerTable":
        """A proportionally faster/slower timer table."""
        return TimerTable(self.t1 * factor, self.t2 * factor, self.t4 * factor)


DEFAULT_TIMERS = TimerTable()
