"""HTTP digest authentication for SIP (RFC 2617 / RFC 3261 §22 subset).

The paper observes that "a great deal of the discussion of possible attacks
centers around an assumption of lack of proper authentication".  This
module supplies that missing piece for the registrar: MD5 digest challenges
(401 + WWW-Authenticate) and Authorization verification, so experiments can
contrast *prevention* (auth stops registration hijacking outright) with
*detection* (vids flags it at the perimeter).

Scope: the original RFC 2617 scheme without qop/auth-int — what SIP gear of
the paper's era actually spoke.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from .errors import SipParseError
from .message import SipRequest, SipResponse

__all__ = [
    "DigestChallenge",
    "DigestCredentials",
    "compute_digest_response",
    "build_authorization",
    "parse_auth_params",
    "Authenticator",
]


def _md5_hex(text: str) -> str:
    return hashlib.md5(text.encode("utf-8")).hexdigest()


def parse_auth_params(value: str) -> Dict[str, str]:
    """Parse ``Digest k1="v1", k2=v2`` header values into a dict."""
    value = value.strip()
    scheme, _, rest = value.partition(" ")
    if scheme.lower() != "digest":
        raise SipParseError(f"unsupported auth scheme: {scheme!r}")
    params: Dict[str, str] = {}
    # Split on commas not inside quotes (quoted values contain no commas in
    # our subset, so a simple split suffices; strip quotes afterwards).
    for chunk in rest.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, _, raw = chunk.partition("=")
        params[key.strip().lower()] = raw.strip().strip('"')
    return params


def _format_params(params: Dict[str, str]) -> str:
    body = ", ".join(f'{key}="{value}"' for key, value in params.items())
    return f"Digest {body}"


@dataclass(frozen=True)
class DigestChallenge:
    """A WWW-Authenticate challenge."""

    realm: str
    nonce: str
    opaque: Optional[str] = None
    algorithm: str = "MD5"

    def header_value(self) -> str:
        params = {"realm": self.realm, "nonce": self.nonce,
                  "algorithm": self.algorithm}
        if self.opaque:
            params["opaque"] = self.opaque
        return _format_params(params)

    @classmethod
    def parse(cls, value: str) -> "DigestChallenge":
        params = parse_auth_params(value)
        if "realm" not in params or "nonce" not in params:
            raise SipParseError("challenge lacks realm/nonce")
        return cls(realm=params["realm"], nonce=params["nonce"],
                   opaque=params.get("opaque"),
                   algorithm=params.get("algorithm", "MD5"))


@dataclass(frozen=True)
class DigestCredentials:
    """What a client knows: username, realm, shared secret."""

    username: str
    realm: str
    password: str


def compute_digest_response(credentials: DigestCredentials, method: str,
                            uri: str, nonce: str) -> str:
    """RFC 2617 §3.2.2 without qop: MD5(HA1:nonce:HA2)."""
    ha1 = _md5_hex(f"{credentials.username}:{credentials.realm}:"
                   f"{credentials.password}")
    ha2 = _md5_hex(f"{method}:{uri}")
    return _md5_hex(f"{ha1}:{nonce}:{ha2}")


def build_authorization(credentials: DigestCredentials,
                        challenge: DigestChallenge, method: str,
                        uri: str) -> str:
    """The Authorization header value answering ``challenge``."""
    response = compute_digest_response(credentials, method, uri,
                                       challenge.nonce)
    params = {
        "username": credentials.username,
        "realm": challenge.realm,
        "nonce": challenge.nonce,
        "uri": uri,
        "response": response,
        "algorithm": challenge.algorithm,
    }
    if challenge.opaque:
        params["opaque"] = challenge.opaque
    return _format_params(params)


_nonce_counter = itertools.count(1)


class Authenticator:
    """Server side: issues challenges and verifies Authorization headers."""

    def __init__(self, realm: str, secret: str = "vids-secret"):
        self.realm = realm
        self._secret = secret
        self._credentials: Dict[str, str] = {}   # username -> password
        self.challenges_issued = 0
        self.verifications_ok = 0
        self.verifications_failed = 0

    def add_user(self, username: str, password: str) -> None:
        self._credentials[username] = password

    def new_nonce(self) -> str:
        count = next(_nonce_counter)
        return _md5_hex(f"{self._secret}:{count}")[:24] + f".{count}"

    def challenge(self, request: SipRequest) -> SipResponse:
        """A 401 Unauthorized carrying a fresh challenge."""
        self.challenges_issued += 1
        response = request.create_response(401)
        response.set("WWW-Authenticate",
                     DigestChallenge(self.realm, self.new_nonce())
                     .header_value())
        return response

    def verify(self, request: SipRequest) -> bool:
        """Check the request's Authorization against the credential store."""
        value = request.get("Authorization")
        if value is None:
            return False
        try:
            params = parse_auth_params(value)
        except SipParseError:
            self.verifications_failed += 1
            return False
        username = params.get("username", "")
        password = self._credentials.get(username)
        required = {"realm", "nonce", "uri", "response"}
        if password is None or not required.issubset(params):
            self.verifications_failed += 1
            return False
        credentials = DigestCredentials(username, params["realm"], password)
        expected = compute_digest_response(
            credentials, request.method, params["uri"], params["nonce"])
        ok = (params["realm"] == self.realm
              and expected == params["response"])
        if ok:
            self.verifications_ok += 1
        else:
            self.verifications_failed += 1
        return ok
