"""Session Description Protocol (RFC 2327 subset).

SDP bodies carry the media attributes the paper's threat model cares about:
"IP address, port number, media type and its encoding scheme" — the values a
third party needs to fabricate RTP packets (media spamming), and the values
the vids SIP machine writes into the global shared variables for the RTP
machine (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import SipParseError

__all__ = ["MediaDescription", "SessionDescription", "SDP_CONTENT_TYPE",
           "media_brief"]

SDP_CONTENT_TYPE = "application/sdp"


def media_brief(
    text: str,
) -> Optional[Tuple[str, int, Tuple[int, ...], Tuple[str, ...], Optional[int]]]:
    """First-audio media attributes without building a SessionDescription.

    Returns ``(connection_address, port, payload_types, encodings,
    ptime_ms)`` for the first ``m=audio`` section, or ``None`` when the
    body declares no audio stream.  This is the per-packet fast path of
    :meth:`SessionDescription.parse`: it walks the same lines with the
    same validation (so a malformed body raises :class:`SipParseError` or
    :class:`ValueError` exactly when the full parse would), but skips the
    dataclass construction the vids distributor immediately discards.
    Parity with the full parse is pinned by tests/sip/test_sdp.py.
    """
    connection_address = "0.0.0.0"
    audio_port: Optional[int] = None
    audio_pts: Tuple[int, ...] = ()
    audio_rtpmap: Optional[Dict[int, str]] = None
    audio_ptime: Optional[int] = None
    in_media = False
    in_audio = False
    for raw in text.split("\n"):
        line = raw.strip()
        if not line:
            continue
        if len(line) < 2 or line[1] != "=":
            raise SipParseError(f"malformed SDP line: {line!r}")
        kind = line[0]
        if kind == "a":
            if not in_media:
                continue
            value = line[2:]
            if value.startswith("rtpmap:"):
                pt_text, _, mapping = value[len("rtpmap:"):].partition(" ")
                payload_type = int(pt_text)
                if in_audio and audio_rtpmap is not None:
                    audio_rtpmap[payload_type] = mapping.strip()
            elif value.startswith("ptime:"):
                ptime = int(value[len("ptime:"):])
                if in_audio:
                    audio_ptime = ptime
        elif kind == "m":
            parts = line[2:].split()
            if len(parts) < 3:
                raise SipParseError(f"malformed m= line: {line!r}")
            port = int(parts[1])
            payload_types = tuple(int(pt) for pt in parts[3:])
            in_media = True
            in_audio = parts[0] == "audio" and audio_port is None
            if in_audio:
                audio_port = port
                audio_pts = payload_types
                audio_rtpmap = {}
        elif kind == "c":
            parts = line[2:].split()
            if len(parts) != 3:
                raise SipParseError(f"malformed c= line: {line!r}")
            connection_address = parts[2]
        elif kind == "v":
            if line[2:] != "0":
                raise SipParseError(f"unsupported SDP version: {line[2:]}")
        elif kind == "o":
            parts = line[2:].split()
            if len(parts) != 6:
                raise SipParseError(f"malformed o= line: {line!r}")
            int(parts[1])
            int(parts[2])
        # s=, t=, b=, k= and unknown lines are tolerated and ignored.
    if audio_port is None:
        return None
    rtpmap = audio_rtpmap or {}
    encodings = tuple(
        mapping.split("/")[0] if (mapping := rtpmap.get(pt)) else ""
        for pt in audio_pts)
    return connection_address, audio_port, audio_pts, encodings, audio_ptime


@dataclass
class MediaDescription:
    """One ``m=`` section: media type, transport port, and codec list."""

    media: str                       # "audio"
    port: int
    proto: str = "RTP/AVP"
    payload_types: List[int] = field(default_factory=list)
    #: payload type -> "ENCODING/clock" from a=rtpmap lines
    rtpmap: Dict[int, str] = field(default_factory=dict)
    ptime_ms: Optional[int] = None

    def encoding_name(self, payload_type: int) -> Optional[str]:
        """Encoding name ("G729") for a payload type, if declared."""
        mapping = self.rtpmap.get(payload_type)
        return mapping.split("/")[0] if mapping else None

    def format_lines(self) -> List[str]:
        fmt = " ".join(str(pt) for pt in self.payload_types)
        lines = [f"m={self.media} {self.port} {self.proto} {fmt}".rstrip()]
        for payload_type, mapping in self.rtpmap.items():
            lines.append(f"a=rtpmap:{payload_type} {mapping}")
        if self.ptime_ms is not None:
            lines.append(f"a=ptime:{self.ptime_ms}")
        return lines


@dataclass
class SessionDescription:
    """A parsed SDP body."""

    origin_user: str = "-"
    session_id: int = 0
    session_version: int = 0
    origin_address: str = "0.0.0.0"
    session_name: str = "call"
    connection_address: str = "0.0.0.0"
    media: List[MediaDescription] = field(default_factory=list)

    @property
    def audio(self) -> Optional[MediaDescription]:
        """The first audio media section, if any."""
        for description in self.media:
            if description.media == "audio":
                return description
        return None

    @classmethod
    def parse(cls, text: str) -> "SessionDescription":
        session = cls()
        session.media = []
        current: Optional[MediaDescription] = None
        # No CRLF normalization pass: splitting on bare LF leaves a
        # trailing CR on each line, and the per-line strip removes it.
        for raw in text.split("\n"):
            line = raw.strip()
            if not line:
                continue
            if len(line) < 2 or line[1] != "=":
                raise SipParseError(f"malformed SDP line: {line!r}")
            kind, value = line[0], line[2:]
            if kind == "v":
                if value != "0":
                    raise SipParseError(f"unsupported SDP version: {value}")
            elif kind == "o":
                parts = value.split()
                if len(parts) != 6:
                    raise SipParseError(f"malformed o= line: {line!r}")
                session.origin_user = parts[0]
                session.session_id = int(parts[1])
                session.session_version = int(parts[2])
                session.origin_address = parts[5]
            elif kind == "s":
                session.session_name = value
            elif kind == "c":
                parts = value.split()
                if len(parts) != 3:
                    raise SipParseError(f"malformed c= line: {line!r}")
                address = parts[2]
                if current is not None:
                    # media-level connection overrides for that stream only;
                    # we keep session-level for simplicity of the model.
                    session.connection_address = address
                else:
                    session.connection_address = address
            elif kind == "m":
                parts = value.split()
                if len(parts) < 3:
                    raise SipParseError(f"malformed m= line: {line!r}")
                current = MediaDescription(
                    media=parts[0],
                    port=int(parts[1]),
                    proto=parts[2],
                    payload_types=[int(pt) for pt in parts[3:]],
                )
                session.media.append(current)
            elif kind == "a":
                if current is None:
                    continue
                if value.startswith("rtpmap:"):
                    body = value[len("rtpmap:"):]
                    pt_text, _, mapping = body.partition(" ")
                    current.rtpmap[int(pt_text)] = mapping.strip()
                elif value.startswith("ptime:"):
                    current.ptime_ms = int(value[len("ptime:"):])
            # t=, b=, k= and unknown lines are tolerated and ignored.
        return session

    def serialize(self) -> str:
        lines = [
            "v=0",
            (
                f"o={self.origin_user} {self.session_id} "
                f"{self.session_version} IN IP4 {self.origin_address}"
            ),
            f"s={self.session_name}",
            f"c=IN IP4 {self.connection_address}",
            "t=0 0",
        ]
        for description in self.media:
            lines.extend(description.format_lines())
        return "\r\n".join(lines) + "\r\n"

    @classmethod
    def for_audio(
        cls,
        address: str,
        port: int,
        payload_type: int,
        encoding: str,
        clock_rate: int = 8000,
        ptime_ms: int = 20,
        session_id: int = 1,
    ) -> "SessionDescription":
        """Convenience builder for a single-codec audio offer/answer."""
        media = MediaDescription(
            media="audio",
            port=port,
            payload_types=[payload_type],
            rtpmap={payload_type: f"{encoding}/{clock_rate}"},
            ptime_ms=ptime_ms,
        )
        return cls(
            origin_user="-",
            session_id=session_id,
            session_version=session_id,
            origin_address=address,
            connection_address=address,
            media=[media],
        )
