"""SIP stack exceptions."""

from __future__ import annotations

__all__ = ["SipError", "SipParseError", "SipProtocolError"]


class SipError(Exception):
    """Base class for SIP stack errors."""


class SipParseError(SipError):
    """A message, URI, or header could not be parsed."""


class SipProtocolError(SipError):
    """A protocol-level violation (bad transaction usage, missing header)."""
