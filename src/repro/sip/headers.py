"""Structured SIP header values: Via, name-addr (From/To/Contact), CSeq.

These are the header fields whose parameter values the vids predicates
inspect: the paper's input vector ``x`` carries "Call-ID and branch
parameters in the Via header field and tag parameter values in the From and
To fields" (Section 4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional

from .constants import BRANCH_MAGIC_COOKIE, SIP_VERSION
from .errors import SipParseError
from .uri import SipUri

__all__ = [
    "Via",
    "NameAddr",
    "CSeq",
    "canonical_header_name",
    "name_addr_brief",
    "via_brief",
    "cseq_brief",
    "new_branch",
    "new_tag",
    "new_call_id",
]

#: Compact header forms of RFC 3261 §7.3.3.
_COMPACT_FORMS = {
    "v": "Via",
    "f": "From",
    "t": "To",
    "i": "Call-ID",
    "m": "Contact",
    "c": "Content-Type",
    "l": "Content-Length",
    "e": "Content-Encoding",
    "s": "Subject",
    "k": "Supported",
}

_CANONICAL = {
    "via": "Via",
    "from": "From",
    "to": "To",
    "call-id": "Call-ID",
    "cseq": "CSeq",
    "contact": "Contact",
    "max-forwards": "Max-Forwards",
    "content-type": "Content-Type",
    "content-length": "Content-Length",
    "expires": "Expires",
    "route": "Route",
    "record-route": "Record-Route",
    "user-agent": "User-Agent",
    "allow": "Allow",
    "supported": "Supported",
    "subject": "Subject",
    "content-encoding": "Content-Encoding",
}


@lru_cache(maxsize=512)
def canonical_header_name(name: str) -> str:
    """Normalize a header name: expand compact forms, fix case.

    Cached: the hot packet path canonicalizes the same handful of names
    (Via, From, To, Call-ID, CSeq, ...) for every message on the wire.
    """
    name = name.strip()
    lowered = name.lower()
    if lowered in _COMPACT_FORMS:
        return _COMPACT_FORMS[lowered]
    if lowered in _CANONICAL:
        return _CANONICAL[lowered]
    return "-".join(part.capitalize() for part in name.split("-"))


def _parse_params(text: str) -> Dict[str, Optional[str]]:
    params: Dict[str, Optional[str]] = {}
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" in chunk:
            key, _, value = chunk.partition("=")
            params[key.strip()] = value.strip()
        else:
            params[chunk] = None
    return params


def _format_params(params: Dict[str, Optional[str]]) -> str:
    out = ""
    for key, value in params.items():
        out += f";{key}" if value is None else f";{key}={value}"
    return out


@dataclass
class Via:
    """A Via header value: ``SIP/2.0/UDP host:port;branch=...``."""

    host: str
    port: int
    transport: str = "UDP"
    params: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def branch(self) -> Optional[str]:
        return self.params.get("branch")

    @classmethod
    def parse(cls, text: str) -> "Via":
        host, port, transport, params = _via_fields(text)
        # Fresh instance and params dict per call: Via is mutable, only the
        # string-splitting work is shared through the cache.
        return cls(host, port, transport, dict(params))

    def __str__(self) -> str:
        return (
            f"{SIP_VERSION}/{self.transport} {self.host}:{self.port}"
            f"{_format_params(self.params)}"
        )


@dataclass
class NameAddr:
    """A From/To/Contact value: ``"Display" <sip:uri>;tag=...``."""

    uri: SipUri
    display_name: Optional[str] = None
    params: Dict[str, Optional[str]] = field(default_factory=dict)

    @property
    def tag(self) -> Optional[str]:
        return self.params.get("tag")

    def with_tag(self, tag: str) -> "NameAddr":
        params = dict(self.params)
        params["tag"] = tag
        return NameAddr(self.uri, self.display_name, params)

    @classmethod
    def parse(cls, text: str) -> "NameAddr":
        uri, display, params = _name_addr_fields(text)
        # The SipUri is immutable and safely shared; the instance and its
        # params dict are rebuilt per call because NameAddr is mutable.
        return cls(uri, display, dict(params))

    def __str__(self) -> str:
        if self.display_name:
            out = f'"{self.display_name}" <{self.uri}>'
        else:
            out = f"<{self.uri}>"
        return out + _format_params(self.params)


@lru_cache(maxsize=2048)
def _via_fields(text: str):
    """Parse a Via value into hashable fields (cached by header text)."""
    text = text.strip()
    try:
        proto, sent_by = text.split(None, 1)
    except ValueError as exc:
        raise SipParseError(f"bad Via: {text!r}") from exc
    parts = proto.split("/")
    if len(parts) != 3 or f"{parts[0]}/{parts[1]}" != SIP_VERSION:
        raise SipParseError(f"bad Via protocol: {text!r}")
    transport = parts[2]
    params: Dict[str, Optional[str]] = {}
    if ";" in sent_by:
        sent_by, _, param_text = sent_by.partition(";")
        params = _parse_params(param_text)
    sent_by = sent_by.strip()
    if ":" in sent_by:
        host, _, port_text = sent_by.partition(":")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise SipParseError(f"bad Via port: {text!r}") from exc
    else:
        host, port = sent_by, 5060
    if not host:
        raise SipParseError(f"empty Via host: {text!r}")
    return host, port, transport, tuple(params.items())


@lru_cache(maxsize=2048)
def _name_addr_fields(text: str):
    """Parse a name-addr value into hashable fields (cached by text)."""
    text = text.strip()
    display: Optional[str] = None
    params: Dict[str, Optional[str]] = {}
    if "<" in text:
        before, _, rest = text.partition("<")
        uri_text, _, after = rest.partition(">")
        display = before.strip().strip('"') or None
        params = _parse_params(after)
        uri = SipUri.parse(uri_text)
    else:
        # addr-spec form: params after ; belong to the header.
        if ";" in text:
            uri_text, _, param_text = text.partition(";")
            params = _parse_params(param_text)
        else:
            uri_text = text
        uri = SipUri.parse(uri_text)
    return uri, display, tuple(params.items())


@lru_cache(maxsize=2048)
def name_addr_brief(text: str) -> "tuple[str, Optional[str], str]":
    """(address-of-record, tag, URI host) of a From/To/Contact value.

    The flat tuple the per-message event builder needs, cached on the raw
    value text: the 2nd..Nth message of a dialog pays one dict lookup
    instead of rebuilding a :class:`NameAddr` and its params dict.
    """
    uri, _display, params = _name_addr_fields(text)
    tag = None
    for key, value in params:
        if key == "tag":
            tag = value
            break
    return uri.address_of_record, tag, uri.host


@lru_cache(maxsize=2048)
def via_brief(text: str) -> "tuple[str, Optional[str]]":
    """(host, branch) of a Via value, cached on the raw value text."""
    host, _port, _transport, params = _via_fields(text)
    branch = None
    for key, value in params:
        if key == "branch":
            branch = value
            break
    return host, branch


@lru_cache(maxsize=2048)
def cseq_brief(text: str) -> "tuple[int, str]":
    """(sequence number, METHOD) of a CSeq value, cached on the raw text."""
    try:
        number_text, method = text.split()
        return int(number_text), method.upper()
    except ValueError as exc:
        raise SipParseError(f"bad CSeq: {text!r}") from exc


@dataclass(frozen=True)
class CSeq:
    """A CSeq header value: ``sequence-number method``."""

    number: int
    method: str

    @classmethod
    def parse(cls, text: str) -> "CSeq":
        number, method = cseq_brief(text)
        return cls(number, method)

    def next(self, method: Optional[str] = None) -> "CSeq":
        return CSeq(self.number + 1, method or self.method)

    def __str__(self) -> str:
        return f"{self.number} {self.method}"


_branch_counter = itertools.count(1)
_tag_counter = itertools.count(1)
_call_id_counter = itertools.count(1)


def new_branch() -> str:
    """A fresh RFC 3261 branch parameter (unique per transaction)."""
    return f"{BRANCH_MAGIC_COOKIE}{next(_branch_counter):08x}"


def new_tag() -> str:
    """A fresh From/To tag."""
    return f"tag{next(_tag_counter):06x}"


def new_call_id(host: str = "invalid") -> str:
    """A fresh Call-ID, scoped to ``host`` as RFC 3261 suggests."""
    return f"cid{next(_call_id_counter):08x}@{host}"
