"""SIP URI model and parser (RFC 3261 §19.1, the subset VoIP calls need)."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional

from .constants import DEFAULT_SIP_PORT
from .errors import SipParseError

__all__ = ["SipUri"]


@dataclass(frozen=True)
class SipUri:
    """A ``sip:`` URI: ``sip:user@host[:port][;param=value]*``."""

    user: Optional[str]
    host: str
    port: Optional[int] = None
    params: tuple = field(default_factory=tuple)  # ((name, value|None), ...)

    @property
    def effective_port(self) -> int:
        """The port to contact: the explicit one or the SIP default."""
        return self.port if self.port is not None else DEFAULT_SIP_PORT

    @property
    def address_of_record(self) -> str:
        """The user@host form used as a location-service key."""
        return f"{self.user}@{self.host}" if self.user else self.host

    def param(self, name: str) -> Optional[str]:
        for key, value in self.params:
            if key == name:
                return value
        return None

    def with_params(self, **params: Optional[str]) -> "SipUri":
        merged = dict(self.params)
        merged.update(params)
        return SipUri(self.user, self.host, self.port, tuple(merged.items()))

    @classmethod
    def parse(cls, text: str) -> "SipUri":
        """Parse a ``sip:`` URI.  Cached: instances are immutable and the
        same From/To/Contact URIs recur on every message of a dialog."""
        return _parse_uri(text)

    def __str__(self) -> str:
        out = "sip:"
        if self.user:
            out += f"{self.user}@"
        out += self.host
        if self.port is not None:
            out += f":{self.port}"
        for key, value in self.params:
            out += f";{key}" if value is None else f";{key}={value}"
        return out


@lru_cache(maxsize=2048)
def _parse_uri(text: str) -> SipUri:
    text = text.strip()
    if text.startswith("<") and text.endswith(">"):
        text = text[1:-1]
    if not text.lower().startswith("sip:"):
        raise SipParseError(f"not a sip: URI: {text!r}")
    rest = text[4:]
    params: Dict[str, Optional[str]] = {}
    if ";" in rest:
        rest, _, param_text = rest.partition(";")
        for chunk in param_text.split(";"):
            if not chunk:
                continue
            if "=" in chunk:
                key, _, value = chunk.partition("=")
                params[key] = value
            else:
                params[chunk] = None
    user: Optional[str] = None
    if "@" in rest:
        user, _, rest = rest.rpartition("@")
        if not user:
            raise SipParseError(f"empty user part in URI: {text!r}")
    port: Optional[int] = None
    host = rest
    if ":" in rest:
        host, _, port_text = rest.partition(":")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise SipParseError(f"bad port in URI: {text!r}") from exc
    if not host:
        raise SipParseError(f"empty host in URI: {text!r}")
    return SipUri(user, host, port, tuple(params.items()))
