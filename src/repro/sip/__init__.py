"""SIP protocol stack (RFC 3261 subset) for the vids reproduction.

Layers, bottom up:

- wire format: :func:`parse_message`, :class:`SipRequest`, :class:`SipResponse`,
  :class:`SipUri`, :class:`Via`, :class:`NameAddr`, :class:`CSeq`,
  :class:`SessionDescription` (SDP bodies);
- transport: :class:`SipTransport` over simulated UDP;
- transactions: :class:`TransactionManager` and the four RFC 3261 §17
  machines, driven by :class:`TimerTable` timers;
- dialogs: :class:`Dialog`;
- elements: :class:`UserAgent` (with :class:`Call`), :class:`ProxyServer`,
  :class:`LocationService`, :class:`DomainDirectory`.
"""

from .auth import (
    Authenticator,
    DigestChallenge,
    DigestCredentials,
    build_authorization,
    compute_digest_response,
    parse_auth_params,
)
from .constants import (
    ACK,
    BYE,
    CANCEL,
    DEFAULT_SIP_PORT,
    INVITE,
    METHODS,
    OPTIONS,
    REGISTER,
    SIP_VERSION,
    reason_phrase,
)
from .dialog import Dialog, DialogId, DialogState
from .dns import DomainDirectory
from .errors import SipError, SipParseError, SipProtocolError
from .headers import (
    CSeq,
    NameAddr,
    Via,
    canonical_header_name,
    new_branch,
    new_call_id,
    new_tag,
)
from .message import (
    SipMessage,
    SipRequest,
    SipResponse,
    is_sip_payload,
    parse_message,
)
from .proxy import ProxyServer
from .registrar import Binding, LocationService, process_register
from .sdp import SDP_CONTENT_TYPE, MediaDescription, SessionDescription
from .timers import DEFAULT_TIMERS, TimerTable
from .transaction import (
    ClientTransaction,
    InviteClientTransaction,
    InviteServerTransaction,
    NonInviteClientTransaction,
    NonInviteServerTransaction,
    ServerTransaction,
    TransactionManager,
    TransactionState,
)
from .transport import SipTransport
from .uri import SipUri
from .useragent import Call, CallState, UserAgent

__all__ = [
    "ACK",
    "Authenticator",
    "BYE",
    "Binding",
    "DigestChallenge",
    "DigestCredentials",
    "build_authorization",
    "compute_digest_response",
    "parse_auth_params",
    "CANCEL",
    "CSeq",
    "Call",
    "CallState",
    "ClientTransaction",
    "DEFAULT_SIP_PORT",
    "DEFAULT_TIMERS",
    "Dialog",
    "DialogId",
    "DialogState",
    "DomainDirectory",
    "INVITE",
    "InviteClientTransaction",
    "InviteServerTransaction",
    "LocationService",
    "METHODS",
    "MediaDescription",
    "NameAddr",
    "NonInviteClientTransaction",
    "NonInviteServerTransaction",
    "OPTIONS",
    "ProxyServer",
    "REGISTER",
    "SDP_CONTENT_TYPE",
    "SIP_VERSION",
    "ServerTransaction",
    "SessionDescription",
    "SipError",
    "SipMessage",
    "SipParseError",
    "SipProtocolError",
    "SipRequest",
    "SipResponse",
    "SipTransport",
    "SipUri",
    "TimerTable",
    "TransactionManager",
    "TransactionState",
    "UserAgent",
    "Via",
    "canonical_header_name",
    "is_sip_payload",
    "new_branch",
    "new_call_id",
    "new_tag",
    "parse_message",
    "process_register",
    "reason_phrase",
]
