"""repro.live: the live-wire front-end (docs/DEPLOYMENT.md).

Feeds the vids pipeline from outside the simulator through the very same
``process_batch`` ingestion path, in two modes:

- **serve** — :class:`UdpFrontend`, an asyncio tap that binds real SIP
  and RTP UDP sockets, stamps datagrams into the simulator's
  :class:`~repro.netsim.packet.Datagram` shape, and maps wall time onto
  the analysis :class:`~repro.efsm.system.ManualClock`;
- **replay** — :func:`replay_pcap`, a dependency-free classic-pcap and
  pcapng decoder (:mod:`repro.live.pcap`) driving
  :func:`~repro.vids.replay.replay_trace` with the original capture
  timestamps.

Both expose ``live_*`` metric families (:class:`LiveMetrics`) through
the obs registry next to the pipeline's ``vids_*`` counters.
"""

from .frontend import UdpFrontend, build_pipeline
from .metrics import LiveMetrics
from .pcap import (DecodeStats, PcapError, PcapNgWriter, PcapWriter,
                   load_pcap, read_pcap, write_pcap)
from .replay import rebase_capture, replay_pcap

__all__ = [
    "DecodeStats",
    "LiveMetrics",
    "PcapError",
    "PcapNgWriter",
    "PcapWriter",
    "UdpFrontend",
    "build_pipeline",
    "load_pcap",
    "read_pcap",
    "rebase_capture",
    "replay_pcap",
    "write_pcap",
]
