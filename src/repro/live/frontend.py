"""Live UDP front-end: feed the IDS from real sockets (docs/DEPLOYMENT.md).

An asyncio datagram server binds the SIP port and a block of RTP ports
(tap topology: it receives *copies* of perimeter traffic from a span
port or packet broker; nothing is forwarded, so the IDS stays passive
exactly as the paper deploys it).  Received datagrams are stamped into
the same :class:`~repro.netsim.packet.Datagram` shape the simulator
produces and flushed in timestamp-ordered batches through the pipeline's
``process_batch`` — the identical ingestion path used by replay and the
scenario runner, so detection behaviour cannot drift between simulated,
replayed, and live operation.

Wall-clock time is mapped onto the pipeline's
:class:`~repro.efsm.system.ManualClock` by rebasing ``time.monotonic()``
onto the analysis clock's origin: between batches the clock advances to
"now" even when the wire is silent, so pattern timers (T, T1, record
linger) fire on schedule.  Monotonic capture time also means backward
wall-clock steps (NTP) cannot reach the pipeline; the clamp in
``process_batch`` plus the ``vids_time_regressions`` counter covers the
replay paths where merged captures genuinely interleave.

A minimal HTTP endpoint (``--metrics-port``) serves the obs registry in
Prometheus text format: ``vids_*`` families from the pipeline plus the
``live_*`` socket/queue families from :class:`LiveMetrics`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable, List, Optional, Tuple, Union

from ..efsm.system import ManualClock
from ..netsim.address import Endpoint
from ..netsim.packet import Datagram
from ..obs import Observability
from ..sip.constants import DEFAULT_SIP_PORT
from ..vids.cluster import (DEFAULT_CLUSTER_CONFIG, ClusterConfig,
                            SupervisedCluster)
from ..vids.config import DEFAULT_CONFIG, VidsConfig
from ..vids.ids import Vids
from ..vids.sharding import ShardedVids
from .metrics import LiveMetrics

__all__ = ["UdpFrontend", "build_pipeline"]

Pipeline = Union[Vids, ShardedVids, SupervisedCluster]


def build_pipeline(config: VidsConfig = DEFAULT_CONFIG,
                   shards: int = 1,
                   supervise: bool = False,
                   cluster: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
                   obs: Optional[Observability] = None,
                   ) -> Tuple[Pipeline, ManualClock]:
    """A pipeline + the manual clock that drives its timers.

    The same topology switch the scenario runner and ``replay_trace``
    use: plain :class:`Vids`, a :class:`ShardedVids` facade, or a
    :class:`SupervisedCluster` (``supervise=True``).
    """
    clock = ManualClock()
    if supervise:
        pipeline: Pipeline = SupervisedCluster(
            shards=max(shards, 1), config=config, clock_now=clock.now,
            timer_scheduler=clock.schedule, obs=obs, cluster=cluster)
    elif shards > 1:
        pipeline = ShardedVids(shards=shards, config=config,
                               clock_now=clock.now,
                               timer_scheduler=clock.schedule, obs=obs)
    else:
        pipeline = Vids(config=config, clock_now=clock.now,
                        timer_scheduler=clock.schedule, obs=obs)
    return pipeline, clock


class _TapProtocol(asyncio.DatagramProtocol):
    """One bound socket; hands every datagram to the front-end."""

    def __init__(self, frontend: "UdpFrontend"):
        self.frontend = frontend
        self.local: Optional[Tuple[str, int]] = None

    def connection_made(self, transport) -> None:
        self.local = transport.get_extra_info("sockname")[:2]

    def datagram_received(self, data: bytes, addr) -> None:
        self.frontend._on_datagram(data, addr, self.local)

    def error_received(self, exc) -> None:  # pragma: no cover - OS-driven
        # ICMP port-unreachable chatter against a tap is routine; the
        # socket stays open.
        pass


class UdpFrontend:
    """Binds SIP/RTP ports and pumps received traffic into a pipeline.

    Parameters mirror the ``serve`` CLI subcommand.  ``sip_port=0`` (and
    RTP ports of 0) bind ephemeral ports — how the loopback smoke tests
    run without privileged or conflicting binds; the actual port is
    published in :attr:`sip_port` after :meth:`start` and registered
    with the pipeline's classifier, so classification follows the real
    socket, not an assumption.
    """

    def __init__(self, pipeline: Pipeline, clock: ManualClock,
                 host: str = "0.0.0.0",
                 sip_port: int = DEFAULT_SIP_PORT,
                 rtp_ports: Iterable[int] = (),
                 flush_interval: float = 0.05,
                 obs: Optional[Observability] = None,
                 metrics_port: Optional[int] = None):
        self.pipeline = pipeline
        self.clock = clock
        self.host = host
        self.sip_port = sip_port
        self.rtp_ports = list(rtp_ports)
        self.flush_interval = flush_interval
        self.obs = obs
        self.metrics_port = metrics_port
        self.metrics = LiveMetrics()
        self._pending: List[Tuple[Datagram, float]] = []
        self._transports: list = []
        self._pump_task: Optional[asyncio.Task] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._base_monotonic = 0.0
        self._origin = 0.0
        if obs is not None:
            self.metrics.register_with(
                obs.registry, queue_depth=lambda: len(self._pending))

    # -- time mapping ---------------------------------------------------------

    def _now(self) -> float:
        """Wall time mapped onto the analysis clock (monotonic source)."""
        return self._origin + time.monotonic() - self._base_monotonic

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._base_monotonic = time.monotonic()
        self._origin = self.clock.now()
        transport, protocol = await loop.create_datagram_endpoint(
            lambda: _TapProtocol(self),
            local_addr=(self.host, self.sip_port))
        self._transports.append(transport)
        self.sip_port = protocol.local[1]
        self._classifier().sip_ports.add(self.sip_port)
        bound_rtp = []
        for port in self.rtp_ports:
            transport, protocol = await loop.create_datagram_endpoint(
                lambda: _TapProtocol(self), local_addr=(self.host, port))
            self._transports.append(transport)
            bound_rtp.append(protocol.local[1])
        self.rtp_ports = bound_rtp
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._serve_metrics, self.host, self.metrics_port)
            self.metrics_port = \
                self._metrics_server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self._pump())

    async def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (the CLI's signal hook)."""
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, flush, let timers resolve.

        With ``drain`` the analysis clock runs one linger period past the
        last packet so in-flight timers (T, T1, record linger) fire and
        their verdicts land before the process exits — the SIGTERM
        contract asserted by the CI live-smoke job.
        """
        self._draining = True
        for transport in self._transports:
            transport.close()
        self._transports.clear()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self.flush()
        if drain:
            config = getattr(self.pipeline, "config", DEFAULT_CONFIG)
            self.clock.advance(config.bye_inflight_timer
                               + config.closed_record_linger + 1.0)
            flush_shed = getattr(self.pipeline, "flush_shed_interval", None)
            if flush_shed is not None:
                flush_shed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        self._shutdown.set()

    # -- datapath -------------------------------------------------------------

    def _classifier(self):
        pipeline = self.pipeline
        classifier = getattr(pipeline, "classifier", None)
        if classifier is None:  # SupervisedCluster
            classifier = pipeline.sharded.classifier
        return classifier

    def _on_datagram(self, data: bytes, addr, local) -> None:
        if self._draining:
            self.metrics.drain_drops += 1
            return
        when = self._now()
        datagram = Datagram(Endpoint(addr[0], addr[1]),
                            Endpoint(local[0], local[1]), data,
                            created_at=when)
        self._pending.append((datagram, when))
        self.metrics.datagrams_received += 1
        self.metrics.bytes_received += len(data)

    def flush(self) -> int:
        """Drain the queue into one ``process_batch`` call.

        Advances the analysis clock to "now" even when no traffic
        arrived, so an idle tap still fires its timers.  Returns the
        number of datagrams handed to the pipeline.
        """
        target = self._now()
        batch = self._pending
        count = len(batch)
        if batch:
            self._pending = []
            self.pipeline.process_batch(batch, clock=self.clock)
            self.metrics.batches_flushed += 1
        remainder = target - self.clock.now()
        if remainder > 0:
            self.clock.advance(remainder)
        return count

    async def _pump(self) -> None:
        while True:
            await asyncio.sleep(self.flush_interval)
            self.flush()

    # -- metrics endpoint -----------------------------------------------------

    async def _serve_metrics(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One-shot HTTP/1.0-style exposition of the obs registry."""
        try:
            # Consume the request head; the path is irrelevant — every
            # GET gets the registry.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = b""
            if self.obs is not None:
                body = self.obs.registry.to_prometheus().encode("utf-8")
            writer.write(b"HTTP/1.0 200 OK\r\n"
                         b"Content-Type: text/plain; version=0.0.4\r\n"
                         b"Content-Length: " + str(len(body)).encode()
                         + b"\r\nConnection: close\r\n\r\n" + body)
            await writer.drain()
        finally:
            writer.close()
