"""Replay a pcap capture through the vids pipeline.

The bridge between :mod:`repro.live.pcap` and
:func:`repro.vids.replay.replay_trace`: decode the capture, map its
timestamps onto the analysis clock, and drive the same batched ingestion
path the simulator uses — so thresholds, timers, and alert content are
directly comparable with simulated runs (the parity bar in
tests/integration/test_live_parity.py).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Union

from ..netsim.faults import ShardFaultPlan
from ..vids.cluster import (DEFAULT_CLUSTER_CONFIG, ClusterConfig,
                            SupervisedCluster)
from ..vids.config import DEFAULT_CONFIG, VidsConfig
from ..vids.ids import Vids
from ..vids.replay import CapturedPacket, replay_trace
from ..vids.sharding import ShardedVids
from .pcap import DecodeStats, load_pcap

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs import Observability

__all__ = ["rebase_capture", "replay_pcap"]

#: Timestamps above this are treated as wall-clock epochs and rebased to
#: t=0; below it they are assumed to already be analysis-clock relative
#: (e.g. a pcap written from a simulator capture), so they replay
#: bit-identically.  10^7 seconds ≈ 116 days of analysis time, far past
#: any scenario horizon, and far before 2001 as an epoch.
EPOCH_THRESHOLD = 1e7


def rebase_capture(capture: List[CapturedPacket],
                   rebase: Union[bool, str] = "auto"
                   ) -> List[CapturedPacket]:
    """Shift epoch timestamps onto the analysis clock (t=0 at first packet).

    Inter-packet spacing — what every window and timer actually measures
    — is preserved exactly; only the origin moves.
    """
    if not capture:
        return capture
    if rebase == "auto":
        rebase = capture[0].time > EPOCH_THRESHOLD
    if not rebase:
        return capture
    origin = capture[0].time
    for packet in capture:
        packet.time -= origin
        packet.datagram.created_at = packet.time
    return capture


def replay_pcap(source: str,
                config: VidsConfig = DEFAULT_CONFIG,
                obs: Optional["Observability"] = None,
                shards: int = 1,
                backend: str = "serial",
                supervise: bool = False,
                cluster: ClusterConfig = DEFAULT_CLUSTER_CONFIG,
                fault_plan: Optional[ShardFaultPlan] = None,
                rebase: Union[bool, str] = "auto",
                stats: Optional[DecodeStats] = None,
                ) -> Union[Vids, ShardedVids, SupervisedCluster]:
    """Decode ``source`` (pcap/pcapng) and analyse it offline.

    Same knobs and return type as :func:`repro.vids.replay.replay_trace`;
    pass ``stats`` to collect the decoder's fail-closed accounting
    alongside the pipeline's own counters.
    """
    capture = rebase_capture(load_pcap(source, stats=stats), rebase)
    return replay_trace(capture, config=config, obs=obs, shards=shards,
                        backend=backend, supervise=supervise,
                        cluster=cluster, fault_plan=fault_plan)
