"""``live_*`` metric families for the front-end (docs/OBSERVABILITY.md).

Mirrors the :class:`repro.vids.metrics.VidsMetrics` exposition pattern:
plain attribute increments on the hot path, callback-backed families in
the obs :class:`~repro.obs.metrics.MetricsRegistry` read live at collect
time.  One :class:`LiveMetrics` instance covers a front-end (socket and
batching counters) and, when attached, a :class:`~repro.live.pcap
.DecodeStats` (decode-error and reassembly accounting) plus a queue-depth
probe — everything an operator needs to tell "the tap is drowning" from
"the capture is garbage" from "the IDS is behind".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Optional

from .pcap import DecodeStats

__all__ = ["LiveMetrics"]


@dataclass
class LiveMetrics:
    """Front-end counters plus hooks into decoder and queue state."""

    #: Datagrams accepted off the sockets (or out of a capture file).
    datagrams_received: int = 0
    #: Application payload bytes received.
    bytes_received: int = 0
    #: Batches flushed into the pipeline's ``process_batch``.
    batches_flushed: int = 0
    #: Datagrams dropped because the frontend was already draining.
    drain_drops: int = 0

    _COUNTER_FIELDS = (
        ("datagrams_received", "Datagrams accepted by the live front-end"),
        ("bytes_received", "Payload bytes accepted by the live front-end"),
        ("batches_flushed", "Batches handed to the analysis pipeline"),
        ("drain_drops", "Datagrams dropped while draining for shutdown"),
    )
    #: DecodeStats fields exported when a decoder is attached.
    _DECODE_FIELDS = (
        ("frames_read", "Capture frames read by the pcap decoder"),
        ("udp_datagrams", "UDP/IPv4 datagrams decoded"),
        ("decode_errors", "Structurally undecodable frames"),
        ("truncated_frames", "Frames shorter than their headers claim"),
        ("unsupported_linktype", "Frames with an undecodable link layer"),
        ("non_ipv4_frames", "Frames carrying a non-IPv4 ethertype"),
        ("non_udp_packets", "IPv4 packets carrying a non-UDP protocol"),
        ("fragments_buffered", "IPv4 fragments held for reassembly"),
        ("fragments_reassembled", "Datagrams completed from fragments"),
        ("fragments_evicted", "Fragments discarded by eviction/oversize"),
    )

    def register_with(self, registry: Any, prefix: str = "live",
                      decode: Optional[DecodeStats] = None,
                      queue_depth: Optional[Callable[[], int]] = None,
                      reassembly_pending: Optional[Callable[[], int]] = None,
                      ) -> None:
        """Expose everything through an obs ``MetricsRegistry``.

        ``queue_depth`` and ``reassembly_pending`` are sampled via
        callbacks so the gauges track the live structures, not snapshots.
        """
        for name, help_text in self._COUNTER_FIELDS:
            registry.counter(f"{prefix}_{name}", help_text).set_function(
                partial(getattr, self, name))
        if decode is not None:
            for name, help_text in self._DECODE_FIELDS:
                registry.counter(f"{prefix}_{name}", help_text).set_function(
                    partial(getattr, decode, name))
        if queue_depth is not None:
            registry.gauge(f"{prefix}_queue_depth",
                           "Datagrams waiting for the next analysis batch"
                           ).set_function(queue_depth)
        if reassembly_pending is not None:
            registry.gauge(f"{prefix}_reassembly_pending",
                           "Incomplete IPv4 reassembly buffers"
                           ).set_function(reassembly_pending)

    def summary(self) -> Dict[str, int]:
        return {name: getattr(self, name)
                for name, _ in self._COUNTER_FIELDS}
