"""Dependency-free pcap and pcapng codec for the live front-end.

The IDS's offline mode (docs/DEPLOYMENT.md) must eat what real capture
tools emit: classic libpcap files in either byte order at microsecond or
nanosecond resolution, and pcapng sections as written by modern
tcpdump/wireshark.  This module decodes both into the same
:class:`~repro.vids.replay.CapturedPacket` stream the simulator's
recorder produces, so :func:`repro.vids.replay.replay_trace` — and with
it every timer, threshold, and alert — behaves identically whether the
evidence came from :class:`RecordingProcessor` or from a span port.

Decoding is deliberately narrow and fail-closed: Ethernet (with stacked
802.1Q/802.1ad VLAN tags), Linux cooked (SLL), and raw-IP link layers;
IPv4 only; UDP only — SIP-over-UDP is the paper's transport.  Anything
else is *counted* (never raised) in :class:`DecodeStats`, because on a
perimeter tap undecodable frames are weather, not errors.  IPv4
fragments are reassembled with bounded buffers, since a 1500-byte MTU
fragments any INVITE whose SDP pushes the UDP payload past ~1480 bytes.

A writer half (:class:`PcapWriter`, :class:`PcapNgWriter`) round-trips
simulator captures to disk — the parity harness in
tests/integration/test_live_parity.py and the CI live-smoke job generate
their fixture pcaps with it, optionally pre-fragmented at a chosen MTU
to exercise reassembly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import (BinaryIO, Dict, Iterable, Iterator, List, Optional,
                    Tuple, Union)

from ..netsim.address import Endpoint
from ..netsim.packet import Datagram
from ..vids.replay import CapturedPacket

__all__ = [
    "DecodeStats",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_LINUX_SLL",
    "LINKTYPE_RAW",
    "PcapError",
    "PcapNgWriter",
    "PcapWriter",
    "read_pcap",
    "load_pcap",
    "write_pcap",
]

# -- link / network constants -------------------------------------------------

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_LINUX_SLL = 113

_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_VLAN = (0x8100, 0x88A8, 0x9100)
_IPPROTO_UDP = 17

# Classic pcap magics (section 3 of the pcap I-D): microsecond and
# nanosecond variants, each in both byte orders.
_MAGIC_USEC = 0xA1B2C3D4
_MAGIC_NSEC = 0xA1B23C4D

# pcapng block types.
_SHB_TYPE = 0x0A0D0D0A
_IDB_TYPE = 0x00000001
_SPB_TYPE = 0x00000003
_EPB_TYPE = 0x00000006
_BYTE_ORDER_MAGIC = 0x1A2B3C4D

#: Option code carrying an interface's timestamp resolution (pcapng §4.2).
_OPT_IF_TSRESOL = 9

#: Reassembly safety rails: concurrent fragment buffers and the largest
#: datagram a buffer may grow to (the IPv4 maximum).
MAX_FRAGMENT_BUFFERS = 256
MAX_DATAGRAM_BYTES = 65_535


class PcapError(Exception):
    """The file is not a pcap/pcapng capture (or is unreadably mangled)."""


@dataclass
class DecodeStats:
    """Fail-closed accounting for one decode pass.

    Every frame read lands in exactly one of: ``udp_datagrams`` (decoded
    and emitted), ``fragments_buffered`` (held for reassembly),
    or one of the skip counters.  Exposed as ``live_*`` gauges through
    :func:`repro.live.metrics.LiveMetrics.register_with`.
    """

    frames_read: int = 0
    udp_datagrams: int = 0
    #: Frames whose link layer is not one we decode.
    unsupported_linktype: int = 0
    #: Ethernet/SLL frames carrying a non-IPv4 ethertype (ARP, IPv6, ...).
    non_ipv4_frames: int = 0
    #: IPv4 packets carrying a protocol other than UDP.
    non_udp_packets: int = 0
    #: Frames whose captured bytes are shorter than their headers claim
    #: (snaplen cuts, mangled length fields).
    truncated_frames: int = 0
    #: Structurally undecodable frames (bad version nibble, header runt).
    decode_errors: int = 0
    #: IPv4 fragments accepted into a reassembly buffer.
    fragments_buffered: int = 0
    #: Datagrams completed from fragments.
    fragments_reassembled: int = 0
    #: Fragments discarded by buffer eviction or oversize protection.
    fragments_evicted: int = 0
    #: Fragment buffers still incomplete when the capture ended.
    reassembly_pending: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in (
            "frames_read", "udp_datagrams", "unsupported_linktype",
            "non_ipv4_frames", "non_udp_packets", "truncated_frames",
            "decode_errors", "fragments_buffered", "fragments_reassembled",
            "fragments_evicted", "reassembly_pending")}


# -- IPv4 fragment reassembly -------------------------------------------------

@dataclass
class _FragmentBuffer:
    """Accumulates the fragments of one IPv4 datagram."""

    chunks: Dict[int, bytes] = field(default_factory=dict)
    #: Total payload length, known once the MF=0 fragment arrives.
    total: Optional[int] = None
    received: int = 0

    def add(self, offset: int, more: bool, payload: bytes) -> None:
        if offset not in self.chunks:
            self.received += len(payload)
        self.chunks[offset] = payload
        if not more:
            self.total = offset + len(payload)

    def complete(self) -> bool:
        if self.total is None:
            return False
        covered = 0
        for offset in sorted(self.chunks):
            if offset > covered:
                return False
            covered = max(covered, offset + len(self.chunks[offset]))
        return covered >= self.total

    def assemble(self) -> bytes:
        data = bytearray(self.total or 0)
        for offset in sorted(self.chunks):
            chunk = self.chunks[offset]
            data[offset:offset + len(chunk)] = chunk
        return bytes(data[:self.total])


class _Reassembler:
    """Bounded IPv4 reassembly keyed by (src, dst, id, proto)."""

    def __init__(self, stats: DecodeStats,
                 max_buffers: int = MAX_FRAGMENT_BUFFERS,
                 max_bytes: int = MAX_DATAGRAM_BYTES):
        self.stats = stats
        self.max_buffers = max_buffers
        self.max_bytes = max_bytes
        self._buffers: Dict[Tuple, _FragmentBuffer] = {}

    def __len__(self) -> int:
        return len(self._buffers)

    def add(self, key: Tuple, offset: int, more: bool,
            payload: bytes) -> Optional[bytes]:
        stats = self.stats
        buffer = self._buffers.get(key)
        if buffer is None:
            if len(self._buffers) >= self.max_buffers:
                # Evict the oldest buffer (insertion order): a tap under a
                # fragment flood must shed state, not grow without bound.
                oldest = next(iter(self._buffers))
                evicted = self._buffers.pop(oldest)
                stats.fragments_evicted += len(evicted.chunks)
            buffer = self._buffers[key] = _FragmentBuffer()
        buffer.add(offset, more, payload)
        stats.fragments_buffered += 1
        if offset + len(payload) > self.max_bytes or \
                buffer.received > self.max_bytes:
            stats.fragments_evicted += len(buffer.chunks)
            del self._buffers[key]
            return None
        if buffer.complete():
            del self._buffers[key]
            stats.fragments_reassembled += 1
            return buffer.assemble()
        return None

    def flush_pending(self) -> None:
        self.stats.reassembly_pending = len(self._buffers)


# -- frame decoding -----------------------------------------------------------

def _strip_link_header(linktype: int, frame: bytes,
                       stats: DecodeStats) -> Optional[bytes]:
    """Return the IPv4 packet inside ``frame``, or None (counted)."""
    if linktype == LINKTYPE_RAW:
        return frame
    if linktype == LINKTYPE_ETHERNET:
        if len(frame) < 14:
            stats.truncated_frames += 1
            return None
        ethertype = (frame[12] << 8) | frame[13]
        offset = 14
        # 802.1Q / 802.1ad tags stack; QinQ gives two in a row.
        while ethertype in _ETHERTYPE_VLAN:
            if len(frame) < offset + 4:
                stats.truncated_frames += 1
                return None
            ethertype = (frame[offset + 2] << 8) | frame[offset + 3]
            offset += 4
        if ethertype != _ETHERTYPE_IPV4:
            stats.non_ipv4_frames += 1
            return None
        return frame[offset:]
    if linktype == LINKTYPE_LINUX_SLL:
        if len(frame) < 16:
            stats.truncated_frames += 1
            return None
        ethertype = (frame[14] << 8) | frame[15]
        if ethertype != _ETHERTYPE_IPV4:
            stats.non_ipv4_frames += 1
            return None
        return frame[16:]
    stats.unsupported_linktype += 1
    return None


def _format_ip(raw: bytes) -> str:
    return f"{raw[0]}.{raw[1]}.{raw[2]}.{raw[3]}"


def _decode_ipv4(packet: bytes, stats: DecodeStats,
                 reassembler: _Reassembler
                 ) -> Optional[Tuple[str, str, bytes]]:
    """IPv4 → (src_ip, dst_ip, UDP packet bytes), reassembling fragments."""
    if len(packet) < 20:
        stats.decode_errors += 1
        return None
    version = packet[0] >> 4
    header_len = (packet[0] & 0x0F) * 4
    if version != 4 or header_len < 20:
        stats.decode_errors += 1
        return None
    total_len = (packet[2] << 8) | packet[3]
    if total_len < header_len:
        stats.decode_errors += 1
        return None
    if len(packet) < total_len:
        stats.truncated_frames += 1
        return None
    # Ethernet pads short frames to 60 bytes: trim to the IP total length
    # or a 2-byte keepalive grows trailing NULs and stops matching.
    packet = packet[:total_len]
    protocol = packet[9]
    if protocol != _IPPROTO_UDP:
        stats.non_udp_packets += 1
        return None
    src = _format_ip(packet[12:16])
    dst = _format_ip(packet[16:20])
    payload = packet[header_len:]

    flags_frag = (packet[6] << 8) | packet[7]
    more_fragments = bool(flags_frag & 0x2000)
    frag_offset = (flags_frag & 0x1FFF) * 8
    if more_fragments or frag_offset:
        ident = (packet[4] << 8) | packet[5]
        payload = reassembler.add((src, dst, ident, protocol),
                                  frag_offset, more_fragments, payload)
        if payload is None:
            return None
    return src, dst, payload


def _decode_udp(src_ip: str, dst_ip: str, packet: bytes,
                stats: DecodeStats) -> Optional[CapturedPacket]:
    if len(packet) < 8:
        stats.truncated_frames += 1
        return None
    sport, dport, udp_len = struct.unpack_from("!HHH", packet)
    if udp_len < 8 or udp_len > len(packet):
        stats.truncated_frames += 1
        return None
    payload = packet[8:udp_len]
    stats.udp_datagrams += 1
    # CapturedPacket's time slot is filled by the caller.
    return CapturedPacket(0.0, Datagram(Endpoint(src_ip, sport),
                                        Endpoint(dst_ip, dport), payload))


def _decode_frame(linktype: int, ts: float, frame: bytes, stats: DecodeStats,
                  reassembler: _Reassembler) -> Optional[CapturedPacket]:
    stats.frames_read += 1
    ip_packet = _strip_link_header(linktype, frame, stats)
    if ip_packet is None:
        return None
    decoded = _decode_ipv4(ip_packet, stats, reassembler)
    if decoded is None:
        return None
    captured = _decode_udp(*decoded, stats)
    if captured is None:
        return None
    captured.time = ts
    captured.datagram.created_at = ts
    return captured


# -- classic pcap reader ------------------------------------------------------

def _read_classic(handle: BinaryIO, header: bytes, stats: DecodeStats,
                  reassembler: _Reassembler) -> Iterator[CapturedPacket]:
    magic_be = struct.unpack(">I", header[:4])[0]
    magic_le = struct.unpack("<I", header[:4])[0]
    if magic_be in (_MAGIC_USEC, _MAGIC_NSEC):
        endian = ">"
        magic = magic_be
    else:
        endian = "<"
        magic = magic_le
    frac_scale = 1e-9 if magic == _MAGIC_NSEC else 1e-6
    rest = handle.read(20)
    if len(rest) < 20:
        raise PcapError("classic pcap: truncated global header")
    linktype = struct.unpack(endian + "I", rest[16:20])[0]
    record = struct.Struct(endian + "IIII")
    while True:
        head = handle.read(16)
        if not head:
            break
        if len(head) < 16:
            stats.truncated_frames += 1
            break
        sec, frac, incl_len, _orig_len = record.unpack(head)
        frame = handle.read(incl_len)
        if len(frame) < incl_len:
            stats.truncated_frames += 1
            break
        ts = sec + frac * frac_scale
        captured = _decode_frame(linktype, ts, frame, stats, reassembler)
        if captured is not None:
            yield captured


# -- pcapng reader ------------------------------------------------------------

@dataclass
class _Interface:
    linktype: int
    #: Seconds per timestamp unit (default 1e-6 per the spec).
    tick: float = 1e-6


def _parse_idb_options(body: bytes, endian: str) -> float:
    """Extract the timestamp tick from an IDB's option list."""
    tick = 1e-6
    offset = 0
    while offset + 4 <= len(body):
        code, length = struct.unpack_from(endian + "HH", body, offset)
        offset += 4
        if code == 0:
            break
        value = body[offset:offset + length]
        if code == _OPT_IF_TSRESOL and length >= 1:
            resol = value[0]
            if resol & 0x80:
                tick = 2.0 ** -(resol & 0x7F)
            else:
                tick = 10.0 ** -resol
        offset += (length + 3) & ~3
    return tick


def _read_pcapng(handle: BinaryIO, first_block_type: bytes,
                 stats: DecodeStats,
                 reassembler: _Reassembler) -> Iterator[CapturedPacket]:
    # The SHB's byte-order magic governs everything that follows until
    # the next SHB (multi-section files reset the interface list).
    endian = ""
    interfaces: List[_Interface] = []
    pending = first_block_type

    while True:
        head = pending if pending is not None else handle.read(4)
        pending = None
        if not head:
            break
        if len(head) < 4:
            raise PcapError("pcapng: truncated block header")
        # Block type is endian-sensitive, but SHB's type is a palindrome.
        block_type_raw = head
        length_bytes = handle.read(4)
        if len(length_bytes) < 4:
            raise PcapError("pcapng: truncated block length")

        if struct.unpack("<I", block_type_raw)[0] == _SHB_TYPE:
            # Peek the byte-order magic to fix endianness for this section.
            magic_bytes = handle.read(4)
            if struct.unpack("<I", magic_bytes)[0] == _BYTE_ORDER_MAGIC:
                endian = "<"
            elif struct.unpack(">I", magic_bytes)[0] == _BYTE_ORDER_MAGIC:
                endian = ">"
            else:
                raise PcapError("pcapng: bad byte-order magic")
            total_len = struct.unpack(endian + "I", length_bytes)[0]
            body = handle.read(total_len - 12)
            if len(body) < total_len - 12:
                raise PcapError("pcapng: truncated SHB")
            interfaces = []
            continue

        if not endian:
            raise PcapError("pcapng: block before section header")
        block_type = struct.unpack(endian + "I", block_type_raw)[0]
        total_len = struct.unpack(endian + "I", length_bytes)[0]
        if total_len < 12 or total_len % 4:
            raise PcapError(f"pcapng: bad block length {total_len}")
        body = handle.read(total_len - 8)
        if len(body) < total_len - 8:
            stats.truncated_frames += 1
            break
        body = body[:-4]  # trailing duplicate of total_len

        if block_type == _IDB_TYPE:
            linktype = struct.unpack_from(endian + "H", body)[0]
            tick = _parse_idb_options(body[8:], endian)
            interfaces.append(_Interface(linktype, tick))
        elif block_type == _EPB_TYPE:
            if len(body) < 20:
                stats.decode_errors += 1
                continue
            if_id, ts_high, ts_low, cap_len, _orig = struct.unpack_from(
                endian + "IIIII", body)
            frame = body[20:20 + cap_len]
            if if_id >= len(interfaces) or len(frame) < cap_len:
                stats.decode_errors += 1
                continue
            interface = interfaces[if_id]
            ts = ((ts_high << 32) | ts_low) * interface.tick
            captured = _decode_frame(interface.linktype, ts, frame,
                                     stats, reassembler)
            if captured is not None:
                yield captured
        elif block_type == _SPB_TYPE:
            if not interfaces:
                stats.decode_errors += 1
                continue
            # Simple packets carry no timestamp and no captured length:
            # the frame fills the block up to the section snaplen.
            frame = body[4:]
            captured = _decode_frame(interfaces[0].linktype, 0.0, frame,
                                     stats, reassembler)
            if captured is not None:
                yield captured
        # Unknown block types (NRB, ISB, custom) are skipped silently —
        # the spec requires readers to tolerate them.


# -- public reader API --------------------------------------------------------

def read_pcap(source: Union[str, BinaryIO],
              stats: Optional[DecodeStats] = None
              ) -> Iterator[CapturedPacket]:
    """Stream UDP/IPv4 packets from a classic pcap or pcapng capture.

    ``source`` is a path or a binary file object.  Yields
    :class:`CapturedPacket` with the original capture timestamp; feed the
    list straight to :func:`repro.vids.replay.replay_trace` (after
    rebasing epoch timestamps — :func:`repro.live.replay.replay_pcap`
    does both).  Pass ``stats`` to collect fail-closed decode accounting.
    """
    if stats is None:
        stats = DecodeStats()
    own = isinstance(source, str)
    handle: BinaryIO = open(source, "rb") if own else source
    reassembler = _Reassembler(stats)
    try:
        magic = handle.read(4)
        if len(magic) < 4:
            raise PcapError("capture shorter than any pcap magic")
        magic_le = struct.unpack("<I", magic)[0]
        magic_be = struct.unpack(">I", magic)[0]
        if magic_le == _SHB_TYPE:
            yield from _read_pcapng(handle, magic, stats, reassembler)
        elif magic_le in (_MAGIC_USEC, _MAGIC_NSEC) or \
                magic_be in (_MAGIC_USEC, _MAGIC_NSEC):
            yield from _read_classic(handle, magic, stats, reassembler)
        else:
            raise PcapError(f"unrecognized capture magic {magic!r}")
    finally:
        reassembler.flush_pending()
        if own:
            handle.close()


def load_pcap(source: Union[str, BinaryIO],
              stats: Optional[DecodeStats] = None) -> List[CapturedPacket]:
    """Eagerly read a whole capture (see :func:`read_pcap`)."""
    return list(read_pcap(source, stats=stats))


# -- frame building (shared by both writers) ----------------------------------

def _mac_for_ip(ip: str) -> bytes:
    """A deterministic locally-administered MAC for a synthetic frame."""
    octets = bytes(int(part) & 0xFF for part in ip.split("."))[:4]
    return b"\x02\x00" + octets.ljust(4, b"\x00")


def _ip_checksum(header: bytes) -> int:
    total = 0
    for index in range(0, len(header), 2):
        total += (header[index] << 8) | header[index + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _ipv4_header(src: str, dst: str, payload_len: int, ident: int,
                 flags_frag: int) -> bytes:
    header = bytearray(struct.pack(
        "!BBHHHBBH4s4s", 0x45, 0, 20 + payload_len, ident, flags_frag,
        64, _IPPROTO_UDP, 0,
        bytes(int(p) for p in src.split(".")),
        bytes(int(p) for p in dst.split("."))))
    checksum = _ip_checksum(header)
    header[10] = checksum >> 8
    header[11] = checksum & 0xFF
    return bytes(header)


def _build_frames(packet: CapturedPacket, ident: int,
                  mtu: Optional[int]) -> List[bytes]:
    """Ethernet frame(s) for one datagram, fragmenting at ``mtu``."""
    datagram = packet.datagram
    src, dst = datagram.src, datagram.dst
    udp = struct.pack("!HHHH", src.port, dst.port,
                      8 + len(datagram.payload), 0) + datagram.payload
    ether = _mac_for_ip(dst.ip) + _mac_for_ip(src.ip) + \
        struct.pack("!H", _ETHERTYPE_IPV4)

    if mtu is None or 20 + len(udp) <= mtu:
        return [ether + _ipv4_header(src.ip, dst.ip, len(udp), ident, 0)
                + udp]
    chunk = ((mtu - 20) // 8) * 8
    if chunk <= 0:
        raise ValueError(f"mtu {mtu} leaves no room for fragment payload")
    frames = []
    for offset in range(0, len(udp), chunk):
        piece = udp[offset:offset + chunk]
        more = 0x2000 if offset + len(piece) < len(udp) else 0
        frames.append(
            ether + _ipv4_header(src.ip, dst.ip, len(piece), ident,
                                 more | (offset // 8)) + piece)
    return frames


# -- classic pcap writer ------------------------------------------------------

class PcapWriter:
    """Writes classic pcap (nanosecond resolution by default).

    Synthesizes Ethernet/IPv4/UDP framing around each datagram; with
    ``mtu`` set, datagrams whose IP packet exceeds it are emitted as
    standards-shaped fragments (the reader's reassembly fixture).
    """

    def __init__(self, handle: BinaryIO, nanosecond: bool = True,
                 snaplen: int = 262_144, mtu: Optional[int] = None):
        self.handle = handle
        self.nanosecond = nanosecond
        self.mtu = mtu
        self._frac_scale = 1e9 if nanosecond else 1e6
        self._ident = 0
        magic = _MAGIC_NSEC if nanosecond else _MAGIC_USEC
        handle.write(struct.pack("<IHHiIII", magic, 2, 4, 0, 0, snaplen,
                                 LINKTYPE_ETHERNET))

    def write(self, packet: CapturedPacket) -> None:
        self._ident = (self._ident + 1) & 0xFFFF
        sec = int(packet.time)
        frac = round((packet.time - sec) * self._frac_scale)
        if frac >= self._frac_scale:  # rounding carried into the next second
            sec += 1
            frac = 0
        for frame in _build_frames(packet, self._ident, self.mtu):
            self.handle.write(struct.pack("<IIII", sec, frac,
                                          len(frame), len(frame)))
            self.handle.write(frame)

    def write_all(self, capture: Iterable[CapturedPacket]) -> None:
        for packet in capture:
            self.write(packet)


def write_pcap(path: str, capture: Iterable[CapturedPacket],
               nanosecond: bool = True, mtu: Optional[int] = None) -> int:
    """Write ``capture`` to ``path`` as classic pcap; returns packet count."""
    count = 0
    with open(path, "wb") as handle:
        writer = PcapWriter(handle, nanosecond=nanosecond, mtu=mtu)
        for packet in capture:
            writer.write(packet)
            count += 1
    return count


# -- pcapng writer ------------------------------------------------------------

class PcapNgWriter:
    """Minimal pcapng writer: one SHB, one ns-resolution IDB, EPBs.

    Exists so the reader's pcapng path is exercised against files we can
    generate hermetically in tests and CI (no capture tools in the image).
    """

    def __init__(self, handle: BinaryIO, mtu: Optional[int] = None):
        self.handle = handle
        self.mtu = mtu
        self._ident = 0
        shb_body = struct.pack("<IHHq", _BYTE_ORDER_MAGIC, 1, 0, -1)
        self._write_block(_SHB_TYPE, shb_body)
        # IDB: Ethernet, unlimited snaplen, if_tsresol=9 (nanoseconds).
        idb_body = struct.pack("<HHI", LINKTYPE_ETHERNET, 0, 0)
        idb_body += struct.pack("<HH", _OPT_IF_TSRESOL, 1) + b"\x09\x00\x00\x00"
        idb_body += struct.pack("<HH", 0, 0)
        self._write_block(_IDB_TYPE, idb_body)

    def _write_block(self, block_type: int, body: bytes) -> None:
        padding = (-len(body)) % 4
        total = 12 + len(body) + padding
        self.handle.write(struct.pack("<II", block_type, total))
        self.handle.write(body + b"\x00" * padding)
        self.handle.write(struct.pack("<I", total))

    def write(self, packet: CapturedPacket) -> None:
        self._ident = (self._ident + 1) & 0xFFFF
        ticks = round(packet.time * 1e9)
        for frame in _build_frames(packet, self._ident, self.mtu):
            body = struct.pack("<IIIII", 0, (ticks >> 32) & 0xFFFFFFFF,
                               ticks & 0xFFFFFFFF, len(frame), len(frame))
            self._write_block(_EPB_TYPE, body + frame)

    def write_all(self, capture: Iterable[CapturedPacket]) -> None:
        for packet in capture:
            self.write(packet)
