"""Call hijacking attack (paper Section 3.1).

"In a call hijacking attack, a new INVITE request could be send within a
pre-existing dialog."  The attacker injects a re-INVITE carrying the
sniffed dialog identifiers and an SDP that redirects the victim's media to
the attacker — from the attacker's own network address, which is what the
vids SIP machine's participant check catches (``ATTACK_Hijack``).
"""

from __future__ import annotations

from typing import Optional

from ..netsim.address import Endpoint
from ..sip.headers import new_branch
from ..sip.message import SipRequest
from ..sip.sdp import SDP_CONTENT_TYPE, SessionDescription
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, attacker_host, find_established_pair

__all__ = ["CallHijackAttack"]

RETRY_INTERVAL = 2.0


class CallHijackAttack(Attack):
    """Redirect an established call's media with an in-dialog INVITE."""

    name = "call-hijack"

    def __init__(self, start_time: float, media_port: int = 55_000,
                 max_wait: float = 600.0):
        super().__init__(start_time)
        self.media_port = media_port
        self.max_wait = max_wait
        self.victim_call_id: Optional[str] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        deadline = self.start_time + self.max_wait

        def attempt() -> None:
            pair = find_established_pair(testbed)
            if pair is None:
                if sim.now + RETRY_INTERVAL < deadline:
                    sim.schedule(RETRY_INTERVAL, attempt)
                return
            self._strike(testbed, host, pair)

        sim.schedule_at(max(self.start_time, sim.now), attempt)

    def _strike(self, testbed, host, pair) -> None:
        sim = testbed.sim
        dialog = pair.callee_call.dialog
        assert dialog is not None
        self.victim_call_id = pair.callee_call.call_id

        sdp = SessionDescription.for_audio(host.ip, self.media_port,
                                           18, "G729")
        reinvite = SipRequest("INVITE", dialog.local_addr.uri.with_params(),
                              body=sdp.serialize())
        reinvite.set("Via", f"SIP/2.0/UDP {host.ip}:5060"
                            f";branch={new_branch()}")
        reinvite.set("Max-Forwards", 70)
        reinvite.set("From", str(dialog.remote_addr))
        reinvite.set("To", str(dialog.local_addr))
        reinvite.set("Call-ID", dialog.call_id)
        reinvite.set("CSeq", f"{dialog.remote_cseq + 1} INVITE")
        reinvite.set("Contact", f"<sip:hijack@{host.ip}:5060>")
        reinvite.set("Content-Type", SDP_CONTENT_TYPE)

        victim = Endpoint(pair.callee_phone.host.ip, 5060)
        host.send_udp(victim, reinvite.serialize(), 5060)
        self.log(sim.now, f"hijack re-INVITE -> {victim} "
                          f"call={self.victim_call_id}")
