"""Media spamming attack (paper Sections 3.2 and 6).

"A third party knowing the SDP information (IP address, port number, media
type and its encoding scheme) and the RTP synchronization source (SSRC)
identifier could fabricate RTP packets.  By having the same SSRC identifier
with higher sequence number or timestamp in the spoofed RTP packets, the
third party can play unauthorized media."

The injector sniffs the victim stream's SSRC and current sequence/timestamp
from the legitimate sender's state, jumps well past them, and plays its own
"media" into the victim's negotiated RTP port.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.address import Endpoint
from ..rtp.packet import RtpPacket
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, attacker_host, find_established_pair

__all__ = ["MediaSpamAttack"]

RETRY_INTERVAL = 2.0


class MediaSpamAttack(Attack):
    """Inject fabricated RTP into an established call."""

    name = "media-spam"

    def __init__(
        self,
        start_time: float,
        seq_jump: int = 1000,
        ts_jump: int = 400_000,
        burst_packets: int = 100,
        burst_interval: float = 0.02,
        spoof_source: bool = True,
        max_wait: float = 600.0,
    ):
        super().__init__(start_time)
        self.seq_jump = seq_jump
        self.ts_jump = ts_jump
        self.burst_packets = burst_packets
        self.burst_interval = burst_interval
        self.spoof_source = spoof_source
        self.max_wait = max_wait
        self.victim_call_id: Optional[str] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        deadline = self.start_time + self.max_wait

        def attempt() -> None:
            pair = find_established_pair(testbed)
            if pair is None:
                if sim.now + RETRY_INTERVAL < deadline:
                    sim.schedule(RETRY_INTERVAL, attempt)
                return
            self._strike(testbed, host, pair)

        sim.schedule_at(max(self.start_time, sim.now), attempt)

    def _strike(self, testbed, host, pair) -> None:
        sim = testbed.sim
        self.victim_call_id = pair.callee_call.call_id
        # Sniffed stream parameters: the caller's sender toward the callee.
        sender = None
        media = pair.caller_phone._media.get(pair.caller_call.call_id)
        if media is not None:
            sender = media.sender
        if sender is None:
            return
        victim_sdp = pair.caller_call.remote_sdp   # the callee's answer
        if victim_sdp is None or victim_sdp.audio is None:
            return
        victim = Endpoint(victim_sdp.connection_address, victim_sdp.audio.port)
        ssrc = sender.ssrc
        seq = (sender.sequence_number + self.seq_jump) % (1 << 16)
        ts = (sender.timestamp + self.ts_jump) % (1 << 32)
        pt = sender.codec.payload_type
        src_ip = pair.caller_phone.host.ip if self.spoof_source else None

        def send(index: int) -> None:
            packet = RtpPacket(
                payload_type=pt,
                sequence_number=(seq + index) % (1 << 16),
                timestamp=(ts + index * 160) % (1 << 32),
                ssrc=ssrc,
                payload=bytes(20),
            )
            host.send_udp(victim, packet.serialize(), victim.port,
                          src_ip=src_ip)

        for index in range(self.burst_packets):
            sim.schedule_at(sim.now + index * self.burst_interval, send, index)
        self.log(sim.now, f"spam burst -> {victim} ssrc={ssrc} "
                          f"call={self.victim_call_id}")
