"""Registration hijacking attack (classic SIP threat; extension).

The attacker REGISTERs its own address as the contact binding for a
victim's address-of-record at the victim's registrar.  Every subsequent
call to the victim is then routed to the attacker.  Without digest
authentication the registrar accepts the binding; with an
:class:`~repro.sip.auth.Authenticator` installed the forged REGISTER is
challenged and dies.  Either way the REGISTER crosses the enterprise
perimeter — where legitimate registrations never appear — so vids raises a
registration-hijack alert.
"""

from __future__ import annotations

from typing import Optional

from ..sip.headers import new_branch, new_call_id, new_tag
from ..sip.message import SipRequest
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, attacker_host

__all__ = ["RegistrationHijackAttack"]


class RegistrationHijackAttack(Attack):
    """Bind ``victim_aor`` to the attacker's address."""

    name = "registration-hijack"

    def __init__(self, start_time: float,
                 victim_aor: str = "b1@b.example.com",
                 expires: int = 3600):
        super().__init__(start_time)
        self.victim_aor = victim_aor
        self.expires = expires
        self.succeeded: Optional[bool] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        proxy = testbed.proxy_b.endpoint

        def strike() -> None:
            request = self._build_register(host.ip)
            host.send_udp(proxy, request.serialize(), 5060)
            self.log(sim.now, f"forged REGISTER {self.victim_aor} -> "
                              f"{host.ip}")
            # Record the outcome once the registrar has had time to act.
            sim.schedule(2.0, lambda: self._check(testbed, host.ip))

        sim.schedule_at(max(self.start_time, sim.now), strike)

    def _check(self, testbed: EnterpriseTestbed, attacker_ip: str) -> None:
        binding = testbed.proxy_b.location.lookup(self.victim_aor,
                                                  testbed.sim.now)
        self.succeeded = binding is not None and binding.host == attacker_ip

    def _build_register(self, attacker_ip: str) -> SipRequest:
        user, _, domain = self.victim_aor.partition("@")
        request = SipRequest("REGISTER", f"sip:{domain}")
        request.set("Via", f"SIP/2.0/UDP {attacker_ip}:5060"
                           f";branch={new_branch()}")
        request.set("Max-Forwards", 70)
        request.set("To", f"<sip:{self.victim_aor}>")
        request.set("From", f"<sip:{self.victim_aor}>;tag={new_tag()}")
        request.set("Call-ID", new_call_id(attacker_ip))
        request.set("CSeq", "1 REGISTER")
        request.set("Contact", f"<sip:{user}@{attacker_ip}:5060>")
        request.set("Expires", self.expires)
        return request
