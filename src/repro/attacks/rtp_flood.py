"""RTP flooding / codec-change attacks (paper Section 3.2).

"The calling party should transmit the media stream according to the
negotiated media encoding scheme.  Changing the encoding scheme or flooding
with RTP packets not only deteriorates the perceived quality of service but
also may cause phones dysfunctional and reboot operations."

The misbehaving party here is a *compromised caller*: the injector hijacks
an established call's sending side, silences the legitimate sender, and
either transmits far above the negotiated packet rate (``mode="flood"``) or
switches to an unnegotiated payload type (``mode="codec"``).
"""

from __future__ import annotations

from typing import Optional

from ..netsim.address import Endpoint
from ..rtp.packet import RtpPacket
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, find_established_pair

__all__ = ["RtpFloodAttack"]

RETRY_INTERVAL = 2.0


class RtpFloodAttack(Attack):
    """Flood the callee with media from a compromised caller endpoint."""

    name = "rtp-flood"

    def __init__(
        self,
        start_time: float,
        mode: str = "flood",
        rate_pps: float = 500.0,
        duration: float = 2.0,
        rogue_payload_type: int = 0,     # PCMU instead of negotiated G.729
        max_wait: float = 600.0,
    ):
        if mode not in ("flood", "codec"):
            raise ValueError(f"unknown mode: {mode!r}")
        super().__init__(start_time)
        self.mode = mode
        self.rate_pps = rate_pps
        self.duration = duration
        self.rogue_payload_type = rogue_payload_type
        self.max_wait = max_wait
        self.victim_call_id: Optional[str] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        sim = testbed.sim
        deadline = self.start_time + self.max_wait

        def attempt() -> None:
            pair = find_established_pair(testbed)
            if pair is None:
                if sim.now + RETRY_INTERVAL < deadline:
                    sim.schedule(RETRY_INTERVAL, attempt)
                return
            self._strike(testbed, pair)

        sim.schedule_at(max(self.start_time, sim.now), attempt)

    def _strike(self, testbed, pair) -> None:
        sim = testbed.sim
        self.victim_call_id = pair.callee_call.call_id
        media = pair.caller_phone._media.get(pair.caller_call.call_id)
        sender = media.sender if media is not None else None
        victim_sdp = pair.caller_call.remote_sdp
        if sender is None or victim_sdp is None or victim_sdp.audio is None:
            return
        victim = Endpoint(victim_sdp.connection_address, victim_sdp.audio.port)

        # The compromised endpoint abandons well-behaved pacing.
        sender.stop()
        host = pair.caller_phone.host
        ssrc = sender.ssrc
        seq = sender.sequence_number
        ts = sender.timestamp

        if self.mode == "codec":
            payload_type = self.rogue_payload_type
            interval = sender.interval
            count = int(self.duration / interval)
        else:
            payload_type = sender.codec.payload_type
            interval = 1.0 / self.rate_pps
            count = int(self.duration * self.rate_pps)

        def send(index: int) -> None:
            packet = RtpPacket(
                payload_type=payload_type,
                sequence_number=(seq + index) % (1 << 16),
                timestamp=(ts + index * 160) % (1 << 32),
                ssrc=ssrc,
                payload=bytes(20),
            )
            host.send_udp(victim, packet.serialize(), sender.local_port)

        for index in range(count):
            sim.schedule_at(sim.now + index * interval, send, index)
        self.log(sim.now, f"{self.mode} burst ({count} pkts) -> {victim} "
                          f"call={self.victim_call_id}")
