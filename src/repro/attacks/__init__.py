"""Attack traffic injectors for every Section-3 threat.

Each injector drives real packets through the simulated network (crossing
the vids perimeter) and is paired with the detection pattern that should
catch it:

=====================  ==============================  =======================
Injector               Threat (paper section)          Expected alert
=====================  ==============================  =======================
InviteFloodAttack      INVITE flooding (3.1, Fig. 4)   INVITE_FLOOD
ByeTeardownAttack      BYE DoS (3.1, Fig. 5)           BYE_DOS / TOLL_FRAUD*
CancelDosAttack        CANCEL DoS (3.1)                CANCEL_DOS
CallHijackAttack       call hijacking (3.1)            CALL_HIJACK
TollFraudAttack        billing fraud (3.1)             TOLL_FRAUD
MediaSpamAttack        media spamming (3.2, Fig. 6)    MEDIA_SPAM
RtpFloodAttack         RTP flooding / codec (3.2)      RTP_FLOOD/CODEC_CHANGE
DrdosReflectionAttack  DRDoS via proxy (3.1)           DRDOS_REFLECTION
=====================  ==============================  =======================

(*) a source-spoofed BYE and genuine toll fraud are the same wire-level
observable; the engine attributes by whether the after-close media comes
from the BYE's claimed sender.
"""

from .base import Attack, EstablishedPair, attacker_host, find_established_pair
from .bye_teardown import ByeTeardownAttack
from .cancel_dos import CancelDosAttack
from .drdos import DrdosReflectionAttack
from .hijack import CallHijackAttack
from .invite_flood import InviteFloodAttack
from .media_spam import MediaSpamAttack
from .registration_hijack import RegistrationHijackAttack
from .rtp_flood import RtpFloodAttack
from .toll_fraud import TollFraudAttack

__all__ = [
    "Attack",
    "ByeTeardownAttack",
    "CallHijackAttack",
    "CancelDosAttack",
    "DrdosReflectionAttack",
    "EstablishedPair",
    "InviteFloodAttack",
    "MediaSpamAttack",
    "RegistrationHijackAttack",
    "RtpFloodAttack",
    "TollFraudAttack",
    "attacker_host",
    "find_established_pair",
]
