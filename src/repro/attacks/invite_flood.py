"""INVITE request flooding attack (paper Section 3.1).

"A number of IP phones together may launch an INVITE flooding attack to
overwhelm a single telephone terminal within a short duration of time."

The injector sends a burst of well-formed INVITEs — distinct Call-IDs and
branches, plausible SDP — at one callee's address-of-record through the
victim domain's proxy, optionally rotating spoofed source addresses to
emulate the distributed variant.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..sip.headers import new_branch, new_call_id, new_tag
from ..sip.message import SipRequest
from ..sip.sdp import SDP_CONTENT_TYPE, SessionDescription
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, attacker_host

__all__ = ["InviteFloodAttack"]

_flood_ids = itertools.count(1)


class InviteFloodAttack(Attack):
    """Flood ``target_aor`` with INVITEs."""

    name = "invite-flood"

    def __init__(
        self,
        start_time: float,
        target_aor: str = "b1@b.example.com",
        count: int = 30,
        interval: float = 0.02,
        spoof_sources: int = 0,
    ):
        super().__init__(start_time)
        self.target_aor = target_aor
        self.count = count
        self.interval = interval
        self.spoof_sources = spoof_sources

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        proxy = testbed.proxy_b.endpoint

        def send_one(index: int) -> None:
            request = self._build_invite(host.ip, index)
            src_ip: Optional[str] = None
            if self.spoof_sources:
                src_ip = f"172.16.{index % self.spoof_sources}.99"
            host.send_udp(proxy, request.serialize(), 5060, src_ip=src_ip)
            self.log(sim.now, f"INVITE#{index} -> {self.target_aor}")

        base = max(self.start_time, sim.now)
        for index in range(self.count):
            sim.schedule_at(base + index * self.interval, send_one, index)

    def _build_invite(self, attacker_ip: str, index: int) -> SipRequest:
        user, _, domain = self.target_aor.partition("@")
        unique = next(_flood_ids)
        sdp = SessionDescription.for_audio(attacker_ip, 40_000 + 2 * index,
                                           18, "G729")
        request = SipRequest("INVITE", f"sip:{self.target_aor}",
                             body=sdp.serialize())
        request.set("Via", f"SIP/2.0/UDP {attacker_ip}:5060"
                           f";branch={new_branch()}")
        request.set("Max-Forwards", 70)
        request.set("From", f"<sip:flood{unique}@evil.example.net>"
                            f";tag={new_tag()}")
        request.set("To", f"<sip:{self.target_aor}>")
        request.set("Call-ID", new_call_id(attacker_ip))
        request.set("CSeq", "1 INVITE")
        request.set("Contact", f"<sip:flood{unique}@{attacker_ip}:5060>")
        request.set("Content-Type", SDP_CONTENT_TYPE)
        return request
