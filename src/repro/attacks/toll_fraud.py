"""Billing / toll-fraud attack (paper Section 3.1).

"Billing and toll fraud can be realized if one end sends a BYE message to
stop billing but continues sending RTP packets."

The fraudster is the *caller itself*: the injector makes the caller's host
emit a genuine BYE (correct dialog identifiers, its real source address) to
the callee while leaving the caller's RTP sender running.  The callee —
and any billing system keyed on signaling — considers the call over; the
media keeps flowing.  vids catches it cross-protocol: the SIP machine's BYE
transition arms the RTP machine's timer T, and packets arriving after
RTP_Close from the BYE sender's own address are attributed as toll fraud.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.address import Endpoint
from ..sip.headers import new_branch
from ..sip.message import SipRequest
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, EstablishedPair, find_established_pair

__all__ = ["TollFraudAttack"]

RETRY_INTERVAL = 2.0


class TollFraudAttack(Attack):
    """Stop billing with a BYE but keep the media flowing."""

    name = "toll-fraud"

    def __init__(self, start_time: float, extra_media_time: float = 30.0,
                 max_wait: float = 600.0):
        super().__init__(start_time)
        #: How long the fraudulent media keeps flowing after the BYE.
        self.extra_media_time = extra_media_time
        self.max_wait = max_wait
        self.victim_call_id: Optional[str] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        sim = testbed.sim
        deadline = self.start_time + self.max_wait

        def attempt() -> None:
            pair = find_established_pair(testbed)
            if pair is None:
                if sim.now + RETRY_INTERVAL < deadline:
                    sim.schedule(RETRY_INTERVAL, attempt)
                return
            self._strike(testbed, pair)

        sim.schedule_at(max(self.start_time, sim.now), attempt)

    def _strike(self, testbed: EnterpriseTestbed,
                pair: EstablishedPair) -> None:
        sim = testbed.sim
        callee_dialog = pair.callee_call.dialog
        assert callee_dialog is not None
        self.victim_call_id = pair.callee_call.call_id
        caller_host = pair.caller_phone.host

        bye = SipRequest("BYE", callee_dialog.local_addr.uri.with_params())
        bye.set("Via", f"SIP/2.0/UDP {caller_host.ip}:5060"
                       f";branch={new_branch()}")
        bye.set("Max-Forwards", 70)
        bye.set("From", str(callee_dialog.remote_addr))
        bye.set("To", str(callee_dialog.local_addr))
        bye.set("Call-ID", callee_dialog.call_id)
        bye.set("CSeq", f"{callee_dialog.remote_cseq + 1} BYE")

        victim = Endpoint(pair.callee_phone.host.ip, 5060)
        # Sent from the caller's own host: a genuine, billable-entity BYE.
        caller_host.send_udp(victim, bye.serialize(), 5061)
        self.log(sim.now, f"fraudulent BYE -> {victim} "
                          f"call={self.victim_call_id}")

        # The fraudster's endpoint deliberately ignores teardown: neuter the
        # sender's stop so the media keeps flowing for the fraud window even
        # if the phone's normal call logic tries to stop it.
        media = pair.caller_phone._media.get(pair.caller_call.call_id)
        if media is not None and media.sender is not None:
            sender = media.sender
            real_stop = sender.stop
            sender.stop = lambda: None   # compromised endpoint
            sim.schedule(self.extra_media_time, real_stop)
