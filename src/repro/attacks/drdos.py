"""Distributed Reflection DoS via the SIP proxy (paper Section 3.1).

"If spoofed requests are sent to a large number of SIP proxy servers (i.e.
reflectors) on the Internet with the victim's IP address as the source of
the requester, the victim will be swamped with the subsequent response
messages, thereby causing a DRDoS attack."

From this enterprise's perspective the local proxy is one of the
reflectors: a burst of INVITEs arrives with the *victim's* spoofed source
address, fanned out across many different callees so no single callee's
Figure-4 counter trips.  The per-source flood machine catches the fan-out
and raises a reflection alert naming the claimed source (the victim).
"""

from __future__ import annotations

import itertools

from ..sip.headers import new_branch, new_call_id, new_tag
from ..sip.message import SipRequest
from ..sip.sdp import SDP_CONTENT_TYPE, SessionDescription
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, attacker_host

__all__ = ["DrdosReflectionAttack"]

_drdos_ids = itertools.count(1)


class DrdosReflectionAttack(Attack):
    """Use the enterprise proxy as a reflector against ``victim_ip``."""

    name = "drdos-reflection"

    def __init__(
        self,
        start_time: float,
        victim_ip: str = "198.51.100.7",
        count: int = 30,
        interval: float = 0.02,
        callees: int = 10,
    ):
        super().__init__(start_time)
        self.victim_ip = victim_ip
        self.count = count
        self.interval = interval
        self.callees = callees

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        proxy = testbed.proxy_b.endpoint

        def send_one(index: int) -> None:
            callee = f"b{(index % self.callees) + 1}@b.example.com"
            request = self._build_invite(callee, index)
            # The whole point: the source is the victim, so the proxy's
            # responses (and the callees' ringing) bounce at the victim.
            host.send_udp(proxy, request.serialize(), 5060,
                          src_ip=self.victim_ip)
            self.log(sim.now, f"spoofed INVITE #{index} -> {callee} "
                              f"(claimed source {self.victim_ip})")

        base = max(self.start_time, sim.now)
        for index in range(self.count):
            sim.schedule_at(base + index * self.interval, send_one, index)

    def _build_invite(self, callee: str, index: int) -> SipRequest:
        unique = next(_drdos_ids)
        sdp = SessionDescription.for_audio(self.victim_ip,
                                           30_000 + 2 * index, 18, "G729")
        request = SipRequest("INVITE", f"sip:{callee}",
                             body=sdp.serialize())
        request.set("Via", f"SIP/2.0/UDP {self.victim_ip}:5060"
                           f";branch={new_branch()}")
        request.set("Max-Forwards", 70)
        request.set("From", f"<sip:victim{unique}@{self.victim_ip}>"
                            f";tag={new_tag()}")
        request.set("To", f"<sip:{callee}>")
        request.set("Call-ID", new_call_id(self.victim_ip))
        request.set("CSeq", "1 INVITE")
        request.set("Contact", f"<sip:victim@{self.victim_ip}:5060>")
        request.set("Content-Type", SDP_CONTENT_TYPE)
        return request
