"""BYE denial-of-service and toll-fraud attacks (paper Sections 3.1 and 6).

"The BYE attack aborts an established call between UAs ... suddenly
malicious UA-C sends a BYE message to either UAs.  The receiving UA will
prematurely teardown the established call assuming that it is requested by
the partner UA."

Two variants, selected by ``spoof``:

- ``"none"`` — UA-C sends the BYE from its own address.  The victim still
  tears the call down (no authentication), and vids flags the BYE directly:
  its source is outside the participant set (``ATTACK_Bye_DoS`` in the SIP
  machine).
- ``"peer"`` — the BYE spoofs the victim's *partner* address.  To vids the
  teardown looks legitimate; detection comes from the Figure-5 cross-
  protocol interaction: the partner, unaware, keeps streaming RTP after
  timer T expires, and packets arriving in RTP_Close raise the alert.
  (Because the continuing media comes from the very address the BYE was
  spoofed as, the attribution heuristic reports it as toll-fraud-consistent
  — on the wire the two attacks are the same observable; see
  :mod:`repro.attacks.toll_fraud`.)

The injector reads the dialog identifiers from the victim's call state, the
simulation stand-in for an attacker who sniffed the signaling.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.address import Endpoint
from ..sip.headers import new_branch
from ..sip.message import SipRequest
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, EstablishedPair, attacker_host, find_established_pair

__all__ = ["ByeTeardownAttack"]

#: How often to re-check for an established call to attack.
RETRY_INTERVAL = 2.0


class ByeTeardownAttack(Attack):
    """Tear down an established call with a forged BYE."""

    name = "bye-teardown"

    def __init__(self, start_time: float, spoof: str = "peer",
                 max_wait: float = 600.0):
        if spoof not in ("none", "peer"):
            raise ValueError(f"unknown spoof mode: {spoof!r}")
        super().__init__(start_time)
        self.spoof = spoof
        self.max_wait = max_wait
        self.victim_call_id: Optional[str] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        deadline = self.start_time + self.max_wait

        def attempt() -> None:
            pair = find_established_pair(testbed)
            if pair is None:
                if sim.now + RETRY_INTERVAL < deadline:
                    sim.schedule(RETRY_INTERVAL, attempt)
                return
            self._strike(testbed, host, pair)

        sim.schedule_at(max(self.start_time, sim.now), attempt)

    def _strike(self, testbed: EnterpriseTestbed, host, pair:
                EstablishedPair) -> None:
        sim = testbed.sim
        callee_dialog = pair.callee_call.dialog
        assert callee_dialog is not None
        self.victim_call_id = pair.callee_call.call_id

        # Build the BYE exactly as the callee expects it from its peer.
        caller_ip = pair.caller_phone.host.ip
        bye = SipRequest("BYE", callee_dialog.local_addr.uri.with_params())
        if self.spoof == "none":
            via_host = host.ip
            src_ip: Optional[str] = None
        else:
            # Victim = callee; spoof its partner (the caller).
            via_host = caller_ip
            src_ip = caller_ip
        bye.set("Via", f"SIP/2.0/UDP {via_host}:5060;branch={new_branch()}")
        bye.set("Max-Forwards", 70)
        bye.set("From", str(callee_dialog.remote_addr))
        bye.set("To", str(callee_dialog.local_addr))
        bye.set("Call-ID", callee_dialog.call_id)
        bye.set("CSeq", f"{callee_dialog.remote_cseq + 1} BYE")

        victim = Endpoint(pair.callee_phone.host.ip, 5060)
        host.send_udp(victim, bye.serialize(), 5060, src_ip=src_ip)
        self.log(sim.now, f"forged BYE ({self.spoof}) -> {victim} "
                          f"call={self.victim_call_id}")
