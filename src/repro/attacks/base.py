"""Attack injector framework.

Every attack from the paper's Section 3 threat model is an :class:`Attack`
that installs itself into a testbed: it gets (or creates) an attacker host
on the Internet side of the perimeter — so its traffic crosses the vids
inline device exactly as real attack traffic would — and schedules its
packets on the shared simulator.

Several attacks model an *on-path* adversary who has sniffed dialog or
media parameters (the paper's media-spamming attacker "knowing the SDP
information ... and the RTP synchronization source identifier").  Those
injectors read the needed values from the victim phones' protocol state —
the simulation equivalent of passive sniffing — and may spoof their UDP
source address, which the simulated network, like the real Internet, does
not validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netsim.link import BPS_100BASET
from ..netsim.node import Host
from ..sip.useragent import Call, CallState
from ..telephony.enterprise import EnterpriseTestbed
from ..telephony.phone import SoftPhone

__all__ = ["Attack", "attacker_host", "find_established_pair",
           "EstablishedPair"]

ATTACKER_IP = "172.16.66.6"


class Attack:
    """Base class: subclasses implement :meth:`install`."""

    name = "attack"

    def __init__(self, start_time: float):
        self.start_time = start_time
        self.events: List[Tuple[float, str]] = []

    def install(self, testbed: EnterpriseTestbed) -> None:
        raise NotImplementedError

    def log(self, time: float, what: str) -> None:
        self.events.append((time, what))

    @property
    def launched(self) -> bool:
        return bool(self.events)


def attacker_host(testbed: EnterpriseTestbed,
                  ip: str = ATTACKER_IP) -> Host:
    """Get or create an attacker host attached to the Internet cloud."""
    existing = testbed.network.hosts.get(ip)
    if existing is not None:
        return existing
    host = Host(testbed.network, f"attacker-{ip}", ip)
    testbed.network.link(host, testbed.internet,
                         bandwidth_bps=BPS_100BASET,
                         propagation_delay=0.001)
    testbed.network.compute_routes()
    return host


@dataclass
class EstablishedPair:
    """An established call seen from both ends (what a sniffer would know)."""

    caller_phone: SoftPhone
    caller_call: Call
    callee_phone: SoftPhone
    callee_call: Call


def find_established_pair(
        testbed: EnterpriseTestbed) -> Optional[EstablishedPair]:
    """Locate an established A->B call and both its legs."""
    for callee_phone in testbed.phones_b:
        for call in callee_phone.ua.calls.values():
            if call.state is not CallState.ESTABLISHED or call.is_caller:
                continue
            for caller_phone in testbed.phones_a:
                peer = caller_phone.ua.calls.get(call.call_id)
                if peer is not None and peer.state is CallState.ESTABLISHED:
                    return EstablishedPair(caller_phone, peer,
                                           callee_phone, call)
    return None
