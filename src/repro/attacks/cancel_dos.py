"""CANCEL denial-of-service attack (paper Section 3.1).

"The CANCEL method is used to terminate pending searches or call attempts
... without proper authentication, the receiving UA cannot differentiate
the spoofed CANCEL message from the genuine one, leading to the denial of
the communication between UAs."

The injector watches for a call in its ringing phase and fires a forged
CANCEL at the callee.  With ``spoof_source=False`` the CANCEL comes from the
attacker's own address, which vids flags immediately (its source is outside
the call's participant set); with ``spoof_source=True`` it mimics the
upstream proxy, the undetectable-without-authentication case the paper
acknowledges.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.address import Endpoint
from ..sip.message import SipRequest
from ..sip.useragent import CallState
from ..telephony.enterprise import EnterpriseTestbed
from .base import Attack, attacker_host

__all__ = ["CancelDosAttack"]

RETRY_INTERVAL = 0.25


class CancelDosAttack(Attack):
    """Kill a pending call attempt with a forged CANCEL."""

    name = "cancel-dos"

    def __init__(self, start_time: float, spoof_source: bool = False,
                 max_wait: float = 600.0):
        super().__init__(start_time)
        self.spoof_source = spoof_source
        self.max_wait = max_wait
        self.victim_call_id: Optional[str] = None

    def install(self, testbed: EnterpriseTestbed) -> None:
        host = attacker_host(testbed)
        sim = testbed.sim
        deadline = self.start_time + self.max_wait

        def attempt() -> None:
            target = self._find_ringing(testbed)
            if target is None:
                if sim.now + RETRY_INTERVAL < deadline:
                    sim.schedule(RETRY_INTERVAL, attempt)
                return
            phone, call = target
            self._strike(testbed, host, phone, call)

        sim.schedule_at(max(self.start_time, sim.now), attempt)

    @staticmethod
    def _find_ringing(testbed: EnterpriseTestbed):
        for phone in testbed.phones_b:
            for call in phone.ua.calls.values():
                if call.state in (CallState.INCOMING, CallState.RINGING) \
                        and not call.is_caller and call.invite_request:
                    return phone, call
        return None

    def _strike(self, testbed, host, phone, call) -> None:
        sim = testbed.sim
        self.victim_call_id = call.call_id
        invite = call.invite_request
        # On-path sniffer: mirror the INVITE's transaction identifiers so
        # the victim's transaction layer matches the CANCEL (RFC 3261 §9.2).
        cancel = SipRequest("CANCEL", invite.uri)
        cancel.set("Via", invite.get("Via"))
        cancel.set("Max-Forwards", 70)
        cancel.set("From", invite.get("From"))
        cancel.set("To", invite.get("To"))
        cancel.set("Call-ID", invite.call_id)
        cseq = invite.cseq
        cancel.set("CSeq", f"{cseq.number} CANCEL")

        # To evade the perimeter IDS the spoofed source must match an address
        # the IDS saw on the INVITE path *outside* the enterprise — i.e. the
        # remote domain's proxy (the Via below the local proxy's), not the
        # local proxy the UAS sees as its previous hop.
        src_ip: Optional[str] = None
        if self.spoof_source:
            vias = invite.vias
            src_ip = vias[1].host if len(vias) > 1 else vias[0].host
        victim = Endpoint(phone.host.ip, 5060)
        host.send_udp(victim, cancel.serialize(), 5060, src_ip=src_ip)
        self.log(sim.now, f"forged CANCEL -> {victim} "
                          f"call={self.victim_call_id} spoof={self.spoof_source}")
