"""repro.obs: unified observability for the vids reproduction.

Three cooperating facilities, threaded through netsim → sip → efsm → vids
(docs/OBSERVABILITY.md):

- **call-scoped tracing** (:mod:`repro.obs.trace`) — a ring-buffered,
  sim-time-stamped event bus correlating classifier verdicts, distributor
  routing, EFSM firings, δ channel messages, alerts, quarantine/shed
  decisions, and fault injections by call-id and packet-id, rendered by
  :func:`render_timeline` and the ``trace`` CLI subcommand;
- **metrics registry** (:mod:`repro.obs.metrics`) — labelled
  counter/gauge/histogram families with JSON and Prometheus-text
  exposition, backing the migrated :class:`~repro.vids.metrics.VidsMetrics`
  plus netsim link/queue gauges;
- **profiling hooks** (:mod:`repro.obs.profiler`) — opt-in per-stage
  wall/CPU timers (classify/distribute/fire) with near-zero overhead when
  disabled.

An :class:`Observability` bundle carries all three through constructor
signatures; every consumer treats it (and each part) as optional, so the
default pipeline pays only pointer comparisons.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    PromSample,
    parse_prometheus,
)
from .profiler import (
    StageProfiler,
    StageStats,
    disable_profiling,
    enable_profiling,
    profiling_enabled,
)
from .timeline import format_event, render_timeline
from .trace import (
    DEFAULT_TRACE_CAPACITY,
    TRACE_FORMAT_VERSION,
    TraceBus,
    TraceEvent,
    TraceExport,
    from_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "OVERFLOW_LABEL",
    "PromSample",
    "StageProfiler",
    "StageStats",
    "TRACE_FORMAT_VERSION",
    "TraceBus",
    "TraceEvent",
    "TraceExport",
    "disable_profiling",
    "enable_profiling",
    "format_event",
    "from_jsonl",
    "parse_prometheus",
    "profiling_enabled",
    "render_timeline",
]


class Observability:
    """The bundle a pipeline component receives: trace + metrics + profiler.

    ``profile=None`` (the default) defers to the module-level flag set by
    :func:`enable_profiling`, so an ``Observability()`` built in a default
    session traces and meters but never touches a clock.
    """

    def __init__(self, trace: Optional[TraceBus] = None,
                 registry: Optional[MetricsRegistry] = None,
                 profile: Optional[bool] = None,
                 trace_capacity: int = DEFAULT_TRACE_CAPACITY):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceBus(trace_capacity)
        if profile is None:
            profile = profiling_enabled()
        self.profiler: Optional[StageProfiler] = (
            StageProfiler(registry=self.registry) if profile else None)

    def timeline(self, call_id: Optional[str] = None,
                 limit: Optional[int] = None) -> str:
        """Render the buffered trace as a forensic timeline."""
        return render_timeline(self.trace.events(), call_id=call_id,
                               limit=limit)
