"""Opt-in per-stage wall/CPU profiling hooks.

The paper's Section 7.3 CPU numbers come from charging a *modelled* cost per
packet; this module measures the reproduction's *actual* cost per pipeline
stage (classify / distribute / fire) so regressions are attributable to a
stage rather than a whole run.

Profiling is off by default and guarded twice:

- a module-level flag (:func:`enable_profiling` /
  :func:`profiling_enabled`) decides whether an
  :class:`~repro.obs.Observability` bundle builds a profiler at all;
- the hot path holds ``profiler = None`` when disabled and guards every
  timing site with an ``is not None`` check, so the disabled cost is one
  pointer comparison per stage — no clock syscalls.

The overhead-guard test pins this down by monkeypatching this module's
``perf_counter`` to raise: a disabled pipeline must never call it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "StageStats",
    "StageProfiler",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
]

#: Module-level opt-in switch consulted by Observability construction.
_PROFILING = False


def enable_profiling() -> None:
    """Turn the module-level profiling flag on."""
    global _PROFILING
    _PROFILING = True


def disable_profiling() -> None:
    """Turn the module-level profiling flag off (the default)."""
    global _PROFILING
    _PROFILING = False


def profiling_enabled() -> bool:
    return _PROFILING


@dataclass(slots=True)
class StageStats:
    """Accumulated timings for one stage."""

    count: int = 0
    wall_total: float = 0.0
    cpu_total: float = 0.0
    wall_max: float = 0.0

    @property
    def wall_mean(self) -> float:
        return self.wall_total / self.count if self.count else 0.0

    @property
    def cpu_mean(self) -> float:
        return self.cpu_total / self.count if self.count else 0.0


class StageProfiler:
    """Accumulates per-stage wall/CPU time; optionally feeds histograms.

    Usage on a hot path (explicit begin/commit, no context-manager frames)::

        token = profiler.begin()
        do_stage()
        profiler.commit("classify", token)

    When built with a registry, each commit also observes the wall duration
    into the ``vids_stage_seconds{stage=...}`` histogram, which is what the
    Prometheus exposition reports.
    """

    def __init__(self, registry: Optional[Any] = None,
                 histogram_name: str = "vids_stage_seconds"):
        self.stages: Dict[str, StageStats] = {}
        self._hist = None
        if registry is not None:
            self._hist = registry.histogram(
                histogram_name,
                "Wall-clock latency per vids pipeline stage",
                labelnames=("stage",))

    # -- measurement ----------------------------------------------------------

    def begin(self) -> Tuple[float, float]:
        """Snapshot (wall, cpu) clocks; pass the token to :meth:`commit`."""
        return (perf_counter(), process_time())

    def commit(self, stage: str, token: Tuple[float, float]) -> float:
        """Charge the elapsed time since ``token`` to ``stage``."""
        wall = perf_counter() - token[0]
        cpu = process_time() - token[1]
        stats = self.stages.get(stage)
        if stats is None:
            stats = self.stages[stage] = StageStats()
        stats.count += 1
        stats.wall_total += wall
        stats.cpu_total += cpu
        if wall > stats.wall_max:
            stats.wall_max = wall
        if self._hist is not None:
            self._hist.labels(stage=stage).observe(wall)
        return wall

    @contextmanager
    def measure(self, stage: str):
        """Context-manager form for non-hot-path call sites."""
        token = self.begin()
        try:
            yield
        finally:
            self.commit(stage, token)

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            stage: {
                "count": stats.count,
                "wall_total": stats.wall_total,
                "wall_mean": stats.wall_mean,
                "wall_max": stats.wall_max,
                "cpu_total": stats.cpu_total,
                "cpu_mean": stats.cpu_mean,
            }
            for stage, stats in sorted(self.stages.items())
        }

    def report(self) -> str:
        """A human-readable per-stage table."""
        if not self.stages:
            return "no stages profiled"
        header = (f"{'stage':<12} {'count':>10} {'wall total':>12} "
                  f"{'wall mean':>12} {'wall max':>12} {'cpu total':>12}")
        lines = [header, "-" * len(header)]
        for stage, stats in sorted(self.stages.items()):
            lines.append(
                f"{stage:<12} {stats.count:>10} "
                f"{stats.wall_total:>11.4f}s "
                f"{stats.wall_mean * 1e6:>10.1f}µs "
                f"{stats.wall_max * 1e6:>10.1f}µs "
                f"{stats.cpu_total:>11.4f}s")
        return "\n".join(lines)

    def clear(self) -> None:
        self.stages.clear()
