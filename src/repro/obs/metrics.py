"""Metrics primitives: counters, gauges and histograms with labels.

A small, dependency-free registry in the Prometheus data model.  Three
design points matter for this codebase:

- **Callback-backed samples.**  The vids hot path already maintains plain
  ``int`` fields (:class:`~repro.vids.metrics.VidsMetrics`); forcing every
  increment through a metric object would tax the packet loop.  Instead any
  counter/gauge child can be bound to a zero-argument callable with
  :meth:`_Child.set_function`; exposition reads the live value at collect
  time, so the hot path keeps its bare attribute increments.

- **Bounded label cardinality.**  Attack traffic controls label values
  (source IPs, call ids) and must not be able to grow a metric family
  without bound.  Each family caps its distinct label sets
  (``max_label_sets``); past the cap, new label sets collapse into a single
  overflow child whose labels all read ``"_overflow"``, and the fold is
  counted in :attr:`MetricFamily.dropped_label_sets`.

- **Round-trippable exposition.**  :meth:`MetricsRegistry.to_prometheus`
  emits Prometheus text exposition format and :func:`parse_prometheus`
  parses it back; tests and the CI obs-smoke step assert the round trip.
"""

from __future__ import annotations

import math
import re
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "PromSample",
    "parse_prometheus",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "OVERFLOW_LABEL",
]

#: Histogram bucket upper bounds (seconds) tuned for per-packet stage
#: latencies: 10 µs .. 100 ms, plus the implicit +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)

#: Distinct label sets one family accepts before folding into overflow.
DEFAULT_MAX_LABEL_SETS = 256

#: Label value every overflow child reports.
OVERFLOW_LABEL = "_overflow"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
            .replace("\n", r"\n")
            .replace('"', r'\"'))


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for char in it:
        if char != "\\":
            out.append(char)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
    return "".join(out)


# -- children -----------------------------------------------------------------


class _Child:
    """One label set's sample holder."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set_function(self, fn: Callable[[], float]) -> None:
        """Bind the sample to a live callable, read at collect time."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        return float(fn()) if fn is not None else self._value


class _CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc {amount})")
        self._value += amount


class _GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class _HistogramChild:
    """Cumulative-bucket histogram sample."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        buckets = self.buckets
        # Linear scan: bucket lists are short (len(DEFAULT_BUCKETS) == 13)
        # and observations cluster in the low buckets.
        for index, bound in enumerate(buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[len(buckets)] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


# -- families -----------------------------------------------------------------


class MetricFamily:
    """A named metric with a fixed label schema and one child per label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Tuple[str, ...] = (),
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        self.name = _check_name(name)
        self.help = help_text
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.max_label_sets = max_label_sets
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._overflow_key = tuple(OVERFLOW_LABEL for _ in self.labelnames)
        #: Label sets folded into the overflow child because of the cap.
        self.dropped_label_sets = 0

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, **labels: Any) -> Any:
        """The child for one label set (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            if (len(self._children) >= self.max_label_sets
                    and key != self._overflow_key):
                self.dropped_label_sets += 1
                key = self._overflow_key
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
                return child
            child = self._make_child()
            self._children[key] = child
        return child

    def _default_child(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; use .labels()")
        return self.labels()

    def collect(self) -> Iterable[Tuple[Tuple[str, ...], Any]]:
        """(label_values, child) pairs in insertion order."""
        return list(self._children.items())


class Counter(MetricFamily):
    """A monotonically increasing value."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(MetricFamily):
    """A value that can go up and down (or track a live callable)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(MetricFamily):
    """An observation distribution over fixed cumulative buckets."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Tuple[str, ...] = (),
                 buckets: Optional[Tuple[float, ...]] = None,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS):
        super().__init__(name, help_text, labelnames, max_label_sets)
        bounds = tuple(sorted(buckets if buckets is not None
                              else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if "le" in self.labelnames:
            raise ValueError(f"{name}: 'le' is reserved for histogram buckets")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


# -- registry -----------------------------------------------------------------


class MetricsRegistry:
    """Owns metric families; get-or-create accessors and exposition."""

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricFamily] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._metrics.get(name)

    def register(self, metric: MetricFamily) -> MetricFamily:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            raise ValueError(f"duplicate metric: {metric.name}")
        self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Tuple[str, ...], **kwargs) -> Any:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"{name} already registered as {metric.kind}, "
                    f"not {cls.kind}")
            if metric.labelnames != tuple(labelnames):
                raise ValueError(
                    f"{name} already registered with labels "
                    f"{metric.labelnames}, not {tuple(labelnames)}")
            return metric
        metric = cls(name, help_text, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Tuple[str, ...] = (), **kwargs) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames,
                                   **kwargs)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Tuple[str, ...] = (), **kwargs) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames,
                                   **kwargs)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Tuple[str, ...] = (), **kwargs) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labelnames,
                                   **kwargs)

    # -- exposition -----------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every family and sample."""
        out: Dict[str, Any] = {}
        for metric in self._metrics.values():
            samples: List[Dict[str, Any]] = []
            for key, child in metric.collect():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(child, _HistogramChild):
                    samples.append({
                        "labels": labels,
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": {
                            _format_value(bound): count
                            for bound, count in child.cumulative()
                        },
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, child in metric.collect():
                base = list(zip(metric.labelnames, key))
                if isinstance(child, _HistogramChild):
                    for bound, cumulative in child.cumulative():
                        labels = base + [("le", _format_value(bound))]
                        lines.append(f"{metric.name}_bucket"
                                     f"{_render_labels(labels)}"
                                     f" {cumulative}")
                    lines.append(f"{metric.name}_sum{_render_labels(base)} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{metric.name}_count{_render_labels(base)} "
                                 f"{child.count}")
                else:
                    lines.append(f"{metric.name}{_render_labels(base)} "
                                 f"{_format_value(child.value)}")
        return "\n".join(lines) + "\n"


def _render_labels(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                     for name, value in labels)
    return "{" + inner + "}"


# -- parsing ------------------------------------------------------------------


class PromSample:
    """One parsed exposition sample."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PromSample({self.name}, {self.labels}, {self.value})"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+\d+)?$")           # optional timestamp, ignored
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"'
    r'(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> List[PromSample]:
    """Parse text exposition back into samples; raises on malformed lines.

    Returns every sample line (histograms appear as their ``_bucket`` /
    ``_sum`` / ``_count`` series).  ``# HELP`` / ``# TYPE`` comment lines
    are validated for shape and skipped.
    """
    samples: List[PromSample] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if not re.match(r"^#\s+(HELP|TYPE)\s+\S+", line):
                raise ValueError(f"line {lineno}: malformed comment: {raw!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        labels: Dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_blob):
                labels[pair.group("name")] = _unescape_label_value(
                    pair.group("value"))
                consumed = pair.end()
            if consumed != len(label_blob):
                raise ValueError(
                    f"line {lineno}: malformed labels: {label_blob!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value: {raw!r}") from exc
        samples.append(PromSample(match.group("name"), labels, value))
    return samples
