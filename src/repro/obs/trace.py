"""Call-scoped structured tracing: the event bus behind the forensic timeline.

The paper's evaluation treats vids as a black box; explaining *why* a call
tripped (or failed to trip) an alert needs the chain the architecture hides:
which classifier verdict a packet got, where the distributor routed it,
which EFSM transition fired, what δ-message crossed the SIP→RTP channel,
and which alert resulted.  A :class:`TraceBus` records exactly that chain as
:class:`TraceEvent` records — sim-time-stamped, correlated by ``call_id``
and ``packet_id``, ring-buffered so a long run keeps the recent past at a
bounded memory cost.

The bus is *passive and optional*: every producer in the pipeline holds an
``Optional[TraceBus]`` and guards each emission with an ``is not None``
check, so a vids instance built without observability pays one pointer
comparison per potential event and allocates nothing.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceBus", "DEFAULT_TRACE_CAPACITY"]

#: Default ring-buffer capacity (events, not bytes).
DEFAULT_TRACE_CAPACITY = 65_536


@dataclass(slots=True)
class TraceEvent:
    """One structured observation on the bus.

    Attributes:
        seq: monotonically increasing emission number (total order even
            when simulation timestamps collide).
        time: simulation time of the observation, in seconds.
        kind: event type (``classify``, ``route``, ``fire``, ``delta``,
            ``alert``, ``call-created``, ``fault``, ... — see
            docs/OBSERVABILITY.md for the catalog).
        call_id: the SIP Call-ID the event is correlated to, when known.
        packet_id: the :class:`~repro.netsim.packet.Datagram` id, when the
            event was caused by one specific packet.
        data: kind-specific payload fields.
    """

    seq: int
    time: float
    kind: str
    call_id: Optional[str]
    packet_id: Optional[int]
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """A flat, JSON-serializable rendering (stable field order)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
        }
        if self.call_id is not None:
            record["call_id"] = self.call_id
        if self.packet_id is not None:
            record["packet_id"] = self.packet_id
        record.update(self.data)
        return record


class TraceBus:
    """A bounded, append-only event bus with call/packet correlation.

    The buffer is a ring: once ``capacity`` events are held, each new
    emission evicts the oldest.  :attr:`emitted` counts every emission ever
    made, so ``emitted - len(bus)`` is the number of evicted (lost) events —
    a forensic session can tell whether its window was wide enough.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        #: Total emissions, including events since evicted from the ring.
        self.emitted = 0
        #: Master switch: emissions while False are discarded unrecorded.
        self.enabled = True

    # -- emission -------------------------------------------------------------

    def emit(self, kind: str, time: float, call_id: Optional[str] = None,
             packet_id: Optional[int] = None, **data: Any) -> None:
        """Record one event.  Extra keyword arguments become ``data``."""
        if not self.enabled:
            return
        self._seq += 1
        self.emitted += 1
        self._events.append(
            TraceEvent(self._seq, time, kind, call_id, packet_id, data))

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since the last :meth:`clear`."""
        return self.emitted - len(self._events)

    def events(self, kind: Optional[str] = None,
               call_id: Optional[str] = None,
               packet_id: Optional[int] = None) -> List[TraceEvent]:
        """Buffered events, optionally filtered; emission (causal) order."""
        selected: Iterable[TraceEvent] = self._events
        if kind is not None:
            selected = (e for e in selected if e.kind == kind)
        if call_id is not None:
            selected = (e for e in selected if e.call_id == call_id)
        if packet_id is not None:
            selected = (e for e in selected if e.packet_id == packet_id)
        return list(selected)

    def for_call(self, call_id: str) -> List[TraceEvent]:
        """Every buffered event correlated to one call."""
        return self.events(call_id=call_id)

    def call_ids(self) -> List[str]:
        """Distinct call ids seen in the buffer, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            if event.call_id is not None and event.call_id not in seen:
                seen[event.call_id] = None
        return list(seen)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # -- export ---------------------------------------------------------------

    def to_jsonl(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """One JSON object per line (``default=str`` for exotic values)."""
        selected = self._events if events is None else events
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=False, default=str)
            for event in selected)
