"""Call-scoped structured tracing: the event bus behind the forensic timeline.

The paper's evaluation treats vids as a black box; explaining *why* a call
tripped (or failed to trip) an alert needs the chain the architecture hides:
which classifier verdict a packet got, where the distributor routed it,
which EFSM transition fired, what δ-message crossed the SIP→RTP channel,
and which alert resulted.  A :class:`TraceBus` records exactly that chain as
:class:`TraceEvent` records — sim-time-stamped, correlated by ``call_id``
and ``packet_id``, ring-buffered so a long run keeps the recent past at a
bounded memory cost.

The bus is *passive and optional*: every producer in the pipeline holds an
``Optional[TraceBus]`` and guards each emission with an ``is not None``
check, so a vids instance built without observability pays one pointer
comparison per potential event and allocates nothing.

Exports round-trip: :meth:`TraceBus.to_jsonl` emits a ``$meta`` header line
(emission/drop accounting, so a consumer can tell when the ring evicted the
head of a call) followed by one typed-safe JSON object per event, and
:func:`from_jsonl` parses that text back into equal :class:`TraceEvent`
objects.  Tuples, sets, frozensets, bytes, and non-string dict keys survive
via ``$``-tagged wrappers; payload keys that would collide with the
envelope fields are namespaced with a ``data_`` prefix instead of silently
shadowing them.
"""

from __future__ import annotations

import json
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "TraceEvent",
    "TraceBus",
    "TraceExport",
    "DEFAULT_TRACE_CAPACITY",
    "TRACE_FORMAT_VERSION",
    "from_jsonl",
]

#: Default ring-buffer capacity (events, not bytes).
DEFAULT_TRACE_CAPACITY = 65_536

#: Version stamp written into the ``$meta`` header of JSONL exports.
TRACE_FORMAT_VERSION = 2

#: Envelope fields of the flat :meth:`TraceEvent.to_dict` rendering.  A
#: payload key equal to one of these must not overwrite the envelope value.
_ENVELOPE_KEYS = ("seq", "time", "kind", "call_id", "packet_id")
_ENVELOPE_SET = frozenset(_ENVELOPE_KEYS)

#: Keys that *decode* as escaped payload keys: one or more ``data_`` prefixes
#: in front of an envelope name.  Encoding adds one prefix to any key in this
#: language (or in the envelope itself); decoding strips exactly one.  That
#: makes the escape reversible even for pathological keys like ``data_seq``.
_ESCAPED_KEY = re.compile(r"(?:data_)+(?:seq|time|kind|call_id|packet_id)\Z")


def _escape_key(key: str) -> str:
    if key in _ENVELOPE_SET or _ESCAPED_KEY.match(key):
        return "data_" + key
    return key


def _unescape_key(key: str) -> str:
    if _ESCAPED_KEY.match(key):
        return key[len("data_"):]
    return key


def _encode_value(value: Any) -> Any:
    """JSON-safe encoding that round-trips the payload types the bus sees.

    Containers the default encoder would flatten or reject — tuples, sets,
    frozensets, bytes, dicts with non-string keys — become single-key
    ``$``-tagged wrappers.  Anything else non-primitive falls back to
    ``str()`` (the pre-round-trip behaviour), so arbitrary objects still
    export without raising.
    """
    kind = type(value)
    if value is None or kind is str or kind is int or kind is float or kind is bool:
        return value
    if kind is tuple:
        return {"$tuple": [_encode_value(item) for item in value]}
    if kind is list:
        return [_encode_value(item) for item in value]
    if kind is set or kind is frozenset:
        tag = "$set" if kind is set else "$frozenset"
        items = sorted(value, key=lambda item: (str(type(item)), repr(item)))
        return {tag: [_encode_value(item) for item in items]}
    if kind is bytes:
        return {"$bytes": value.hex()}
    if kind is dict:
        plain = all(
            isinstance(key, str) and not key.startswith("$") for key in value)
        if plain:
            return {key: _encode_value(item) for key, item in value.items()}
        return {"$dict": [[_encode_value(key), _encode_value(item)]
                          for key, item in value.items()]}
    return str(value)


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            tag, payload = next(iter(value.items()))
            if tag == "$tuple":
                return tuple(_decode_value(item) for item in payload)
            if tag == "$set":
                return {_decode_value(item) for item in payload}
            if tag == "$frozenset":
                return frozenset(_decode_value(item) for item in payload)
            if tag == "$bytes":
                return bytes.fromhex(payload)
            if tag == "$dict":
                return {_decode_value(key): _decode_value(item)
                        for key, item in payload}
        return {key: _decode_value(item) for key, item in value.items()}
    return value


@dataclass(slots=True)
class TraceEvent:
    """One structured observation on the bus.

    Attributes:
        seq: monotonically increasing emission number (total order even
            when simulation timestamps collide).
        time: simulation time of the observation, in seconds.
        kind: event type (``classify``, ``route``, ``fire``, ``delta``,
            ``alert``, ``call-created``, ``fault``, ... — see
            docs/OBSERVABILITY.md for the catalog).
        call_id: the SIP Call-ID the event is correlated to, when known.
        packet_id: the :class:`~repro.netsim.packet.Datagram` id, when the
            event was caused by one specific packet.
        data: kind-specific payload fields.
    """

    seq: int
    time: float
    kind: str
    call_id: Optional[str]
    packet_id: Optional[int]
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """A flat, JSON-serializable rendering (stable field order).

        Payload keys that collide with the envelope (``seq``/``time``/
        ``kind``/``call_id``/``packet_id``) are namespaced with a ``data_``
        prefix rather than overwriting the envelope fields; values are
        encoded with the typed-safe scheme so the rendering round-trips
        through :func:`from_jsonl`.
        """
        record: Dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
        }
        if self.call_id is not None:
            record["call_id"] = self.call_id
        if self.packet_id is not None:
            record["packet_id"] = self.packet_id
        for key, value in self.data.items():
            record[_escape_key(key)] = _encode_value(value)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        data: Dict[str, Any] = {}
        for key, value in record.items():
            if key in _ENVELOPE_SET:
                continue
            data[_unescape_key(key)] = _decode_value(value)
        return cls(
            seq=record["seq"],
            time=record["time"],
            kind=record["kind"],
            call_id=record.get("call_id"),
            packet_id=record.get("packet_id"),
            data=data,
        )


@dataclass(slots=True)
class TraceExport:
    """A parsed JSONL export: the events plus the bus accounting header.

    ``dropped > 0`` means the ring evicted events before the export was
    taken — per-call timelines may be missing their head, and a consumer
    (the miner, notably) must treat truncated calls accordingly.
    """

    events: List[TraceEvent] = field(default_factory=list)
    emitted: Optional[int] = None
    dropped: int = 0
    capacity: Optional[int] = None
    format: Optional[int] = None

    @property
    def truncated(self) -> bool:
        return self.dropped > 0


def from_jsonl(text: str) -> TraceExport:
    """Parse a :meth:`TraceBus.to_jsonl` export back into events.

    Accepts exports with or without the ``$meta`` header line (pre-v2
    exports had none, so ``emitted``/``capacity`` come back ``None``).
    Blank lines are skipped.
    """
    export = TraceExport()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno}: expected a JSON object")
        if "$meta" in record:
            meta = record["$meta"]
            export.format = meta.get("format")
            export.emitted = meta.get("emitted")
            export.dropped = meta.get("dropped", 0)
            export.capacity = meta.get("capacity")
            continue
        export.events.append(TraceEvent.from_dict(record))
    return export


class TraceBus:
    """A bounded, append-only event bus with call/packet correlation.

    The buffer is a ring: once ``capacity`` events are held, each new
    emission evicts the oldest.  :attr:`emitted` counts every emission ever
    made, so ``emitted - len(bus)`` is the number of evicted (lost) events —
    a forensic session can tell whether its window was wide enough.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        #: Total emissions, including events since evicted from the ring.
        self.emitted = 0
        #: Master switch: emissions while False are discarded unrecorded.
        self.enabled = True

    # -- emission -------------------------------------------------------------

    def emit(self, kind: str, time: float, call_id: Optional[str] = None,
             packet_id: Optional[int] = None, **data: Any) -> None:
        """Record one event.  Extra keyword arguments become ``data``."""
        if not self.enabled:
            return
        self._seq += 1
        self.emitted += 1
        self._events.append(
            TraceEvent(self._seq, time, kind, call_id, packet_id, data))

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since the last :meth:`clear`."""
        return self.emitted - len(self._events)

    def events(self, kind: Optional[str] = None,
               call_id: Optional[str] = None,
               packet_id: Optional[int] = None) -> List[TraceEvent]:
        """Buffered events, optionally filtered; emission (causal) order."""
        selected: Iterable[TraceEvent] = self._events
        if kind is not None:
            selected = (e for e in selected if e.kind == kind)
        if call_id is not None:
            selected = (e for e in selected if e.call_id == call_id)
        if packet_id is not None:
            selected = (e for e in selected if e.packet_id == packet_id)
        return list(selected)

    def for_call(self, call_id: str) -> List[TraceEvent]:
        """Every buffered event correlated to one call."""
        return self.events(call_id=call_id)

    def call_ids(self) -> List[str]:
        """Distinct call ids seen in the buffer, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            if event.call_id is not None and event.call_id not in seen:
                seen[event.call_id] = None
        return list(seen)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # -- export ---------------------------------------------------------------

    def to_jsonl(self, events: Optional[Iterable[TraceEvent]] = None,
                 header: bool = True) -> str:
        """Typed-safe JSONL: a ``$meta`` accounting line, then one event/line.

        The header carries ``emitted``/``dropped``/``capacity`` so a consumer
        can detect ring truncation (``dropped > 0``) instead of silently
        learning from timelines whose head was evicted.  Pass
        ``header=False`` for a bare event stream.
        """
        selected = list(self._events if events is None else events)
        lines: List[str] = []
        if header:
            lines.append(json.dumps({"$meta": {
                "format": TRACE_FORMAT_VERSION,
                "emitted": self.emitted,
                "dropped": self.dropped,
                "capacity": self.capacity,
                "events": len(selected),
            }}, sort_keys=False))
        lines.extend(
            json.dumps(event.to_dict(), sort_keys=False, default=str)
            for event in selected)
        return "\n".join(lines)
