"""Forensic timeline rendering for traced events.

Turns the flat :class:`~repro.obs.trace.TraceBus` stream into the per-call
diagnostic artifact the related monitoring literature (Nassar et al.'s
event-correlation IDS, SecSip) treats as primary: one sim-time-ordered
timeline interleaving classifier verdicts, distributor routing, EFSM
firings, δ channel messages, and alerts for a single call.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .trace import TraceEvent

__all__ = ["render_timeline", "format_event"]


def _fmt_classify(data: dict) -> str:
    verdict = data.get("verdict", "?")
    out = f"classifier verdict: {verdict}"
    if data.get("malformed"):
        out += f" (malformed {data['malformed']})"
    src, dst = data.get("src"), data.get("dst")
    if src or dst:
        out += f"  {src} -> {dst}"
    return out


def _fmt_route(data: dict) -> str:
    out = f"distributor: {data.get('protocol', '?')} -> {data.get('outcome', '?')}"
    if data.get("direction"):
        out += f" ({data['direction']})"
    return out


def _fmt_fire(data: dict) -> str:
    arrow = f"{data.get('from_state')} --{data.get('event')}--> {data.get('to_state')}"
    flags = []
    if data.get("channel"):
        flags.append(f"via {data['channel']}")
    if data.get("deviation"):
        flags.append("DEVIATION")
    if data.get("attack"):
        flags.append("ATTACK")
    suffix = f"  [{', '.join(flags)}]" if flags else ""
    return f"{data.get('machine')}: {arrow}{suffix}"


def _fmt_delta(data: dict) -> str:
    return (f"δ {data.get('sender')} ! {data.get('event')} "
            f"on {data.get('channel')}")


def _fmt_alert(data: dict) -> str:
    out = f"ALERT {data.get('attack_type')}"
    if data.get("machine"):
        out += f" (machine={data['machine']}, state={data.get('state')})"
    if data.get("source"):
        out += f" src={data['source']}"
    return out


def _fmt_fault(data: dict) -> str:
    return f"fault injected: {data.get('fault')} on {data.get('link')}"


_FORMATTERS = {
    "classify": _fmt_classify,
    "route": _fmt_route,
    "fire": _fmt_fire,
    "delta": _fmt_delta,
    "alert": _fmt_alert,
    "fault": _fmt_fault,
}


def format_event(event: TraceEvent) -> str:
    """One timeline line for one event (without the time column)."""
    formatter = _FORMATTERS.get(event.kind)
    if formatter is not None:
        body = formatter(event.data)
    else:
        fields = ", ".join(f"{k}={v}" for k, v in event.data.items())
        body = f"{event.kind}" + (f": {fields}" if fields else "")
    if event.packet_id is not None:
        body += f"  [pkt #{event.packet_id}]"
    return body


def render_timeline(events: Iterable[TraceEvent],
                    call_id: Optional[str] = None,
                    limit: Optional[int] = None) -> str:
    """A sim-time-ordered text timeline, optionally scoped to one call.

    Events are sorted by ``(time, seq)`` so simultaneous events keep their
    causal emission order.  With ``limit``, only the *last* ``limit`` lines
    are kept (the interesting end of a long capture).
    """
    selected: List[TraceEvent] = [
        e for e in events if call_id is None or e.call_id == call_id
    ]
    selected.sort(key=lambda e: (e.time, e.seq))
    truncated = 0
    if limit is not None and len(selected) > limit:
        truncated = len(selected) - limit
        selected = selected[-limit:]

    title = (f"timeline for call {call_id}" if call_id is not None
             else "timeline (all events)")
    lines = [f"=== {title}: {len(selected)} events ==="]
    if truncated:
        lines.append(f"... {truncated} earlier events omitted ...")
    for event in selected:
        lines.append(f"t={event.time:12.6f}  {format_event(event)}")
    if len(lines) == 1 + (1 if truncated else 0):
        lines.append("(no events)")
    return "\n".join(lines)
