"""Scenario runner: the experiment harness behind every table and figure.

A scenario builds the Figure-7 testbed, optionally installs vids on the
inline host, installs a random call workload (and any attack injectors),
runs the simulation, and collects the measurements Section 7 reports:
per-call setup delays (Figure 9), RTP delay and delay variation
(Figure 10), vids CPU utilization and per-call memory (Section 7.3), and
alerts (Section 7.5).

Because the random streams are named and seeded, a with-vids run and a
without-vids run of the same :class:`ScenarioParams` see the identical call
pattern, making the comparison paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from ..netsim.faults import FaultyLink, ShardFaultPlan, inject_faults

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs import Observability
from ..vids.cluster import (DEFAULT_CLUSTER_CONFIG, ClusterConfig,
                            SupervisedCluster)
from ..vids.config import DEFAULT_CONFIG, VidsConfig
from ..vids.ids import Vids
from ..vids.sharding import ShardedVids
from .callgen import CallWorkload, WorkloadParams
from .enterprise import EnterpriseTestbed, TestbedParams, build_testbed
from .phone import CallRecordStats

__all__ = ["ScenarioParams", "ScenarioResult", "run_scenario"]

#: Extra simulated time after the workload horizon so calls complete.
DRAIN_TIME = 120.0
#: Registrations happen this long before the first call.
REGISTRATION_LEAD = 5.0


@dataclass
class ScenarioParams:
    """Everything that defines one experiment run."""

    testbed: TestbedParams = field(default_factory=TestbedParams)
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    with_vids: bool = True
    vids_config: VidsConfig = DEFAULT_CONFIG
    #: Attack injectors (objects with ``install(testbed)``).
    attacks: tuple = ()
    drain_time: float = DRAIN_TIME
    #: Optional fault plan installed on the vids perimeter link (the
    #: router-B side), so chaos runs stress exactly the traffic the IDS
    #: inspects.  See :mod:`repro.netsim.faults`.
    fault_plan: Optional["FaultPlan"] = None
    #: Callables invoked as ``hook(testbed, vids, sim)`` after workload and
    #: attacks are installed but before the run — for scheduling scenario
    #: events (e.g. poisoning a call mid-run in chaos tests).
    hooks: tuple = ()
    #: Observability bundle (trace bus + metrics registry + profiler)
    #: threaded through vids, the fault layer, and the netsim gauges.
    obs: Optional["Observability"] = None
    #: Analysis shards: 1 runs the classic single pipeline; N > 1 installs
    #: a :class:`~repro.vids.sharding.ShardedVids` facade on the inline
    #: device instead (docs/SCALING.md).
    shards: int = 1
    #: Put the shards under a :class:`~repro.vids.cluster.ShardSupervisor`
    #: (checkpointing, health-checked failover, backpressure) — the
    #: robustness tier of docs/ROBUSTNESS.md "Supervision & failover".
    supervise: bool = False
    #: Supervision tunables (cadence, heartbeats, backoff, credits).
    cluster_config: ClusterConfig = DEFAULT_CLUSTER_CONFIG
    #: Deterministic shard-kill/hang/slowdown injections against the
    #: supervised cluster (chaos scenarios).
    shard_fault_plan: Optional[ShardFaultPlan] = None


@dataclass
class ScenarioResult:
    """Measurements collected from one run."""

    params: ScenarioParams
    calls: List[CallRecordStats]
    vids: Optional[Union[Vids, ShardedVids, SupervisedCluster]]
    cpu_utilization: float
    elapsed: float
    workload: CallWorkload
    testbed: EnterpriseTestbed
    #: The installed fault wrapper when ``params.fault_plan`` was set.
    faulty_link: Optional["FaultyLink"] = None

    # -- call setup (Figure 9) -------------------------------------------------

    def setup_delays(self, caller: Optional[str] = None) -> List[float]:
        """Setup delays (INVITE -> 180) of answered caller-side legs."""
        delays = []
        for record in self.calls:
            if not record.is_caller_side or record.setup_delay is None:
                continue
            if caller is not None and not record.caller.startswith(caller):
                continue
            delays.append(record.setup_delay)
        return delays

    @property
    def mean_setup_delay(self) -> float:
        delays = self.setup_delays()
        return sum(delays) / len(delays) if delays else 0.0

    # -- media QoS (Figure 10) ------------------------------------------------

    def rtp_delays(self) -> List[float]:
        return [r.rtp_mean_delay for r in self.calls
                if r.rtp_packets_received > 0]

    def rtp_delay_variations(self) -> List[float]:
        return [r.rtp_delay_variation for r in self.calls
                if r.rtp_packets_received > 1]

    def rtp_jitters(self) -> List[float]:
        return [r.rtp_jitter for r in self.calls
                if r.rtp_packets_received > 1]

    def mos_scores(self) -> List[float]:
        """Per-leg E-model MOS from measured delay and loss (G.729)."""
        from ..rtp.quality import estimate_mos

        scores = []
        for record in self.calls:
            total = record.rtp_packets_received + record.rtp_lost
            if record.rtp_packets_received == 0 or total == 0:
                continue
            loss = record.rtp_lost / total
            scores.append(estimate_mos(record.rtp_mean_delay, loss))
        return scores

    @property
    def mean_mos(self) -> float:
        scores = self.mos_scores()
        return sum(scores) / len(scores) if scores else 0.0

    @property
    def mean_rtp_delay(self) -> float:
        delays = self.rtp_delays()
        return sum(delays) / len(delays) if delays else 0.0

    @property
    def mean_rtp_delay_variation(self) -> float:
        values = self.rtp_delay_variations()
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_rtp_jitter(self) -> float:
        values = self.rtp_jitters()
        return sum(values) / len(values) if values else 0.0

    # -- bookkeeping ------------------------------------------------------------

    @property
    def answered_calls(self) -> int:
        return sum(1 for r in self.calls if r.is_caller_side and r.answered)

    @property
    def placed_calls(self) -> int:
        return sum(1 for r in self.calls if r.is_caller_side)

    def alerts_by_type(self) -> Dict[str, int]:
        if self.vids is None:
            return {}
        return {t.value: c for t, c in self.vids.alert_manager.counts.items()}

    def summary(self) -> Dict[str, Any]:
        return {
            "with_vids": self.params.with_vids,
            "placed_calls": self.placed_calls,
            "answered_calls": self.answered_calls,
            "mean_setup_delay": self.mean_setup_delay,
            "mean_rtp_delay": self.mean_rtp_delay,
            "mean_rtp_delay_variation": self.mean_rtp_delay_variation,
            "mean_rtp_jitter": self.mean_rtp_jitter,
            "mean_mos": self.mean_mos,
            "cpu_utilization": self.cpu_utilization,
            "alerts": self.alerts_by_type(),
        }


def run_scenario(params: ScenarioParams) -> ScenarioResult:
    """Build, run, and measure one scenario."""
    testbed = build_testbed(params.testbed)
    sim = testbed.sim

    obs = params.obs
    vids: Optional[Union[Vids, ShardedVids, SupervisedCluster]] = None
    if params.with_vids:
        if params.supervise:
            vids = SupervisedCluster(
                shards=max(params.shards, 1), sim=sim,
                config=params.vids_config, obs=obs,
                cluster=params.cluster_config,
                fault_plan=params.shard_fault_plan)
        elif params.shards > 1:
            vids = ShardedVids(shards=params.shards, sim=sim,
                               config=params.vids_config, obs=obs)
        else:
            vids = Vids(sim=sim, config=params.vids_config, obs=obs)
        testbed.attach_processor(vids)

    if obs is not None and obs.registry is not None:
        testbed.network.register_metrics(obs.registry)
        testbed.vids_device.register_metrics(obs.registry)

    testbed.register_all()
    sim.run(until=REGISTRATION_LEAD)

    # The workload draws from the *network's* stream factory so the pattern
    # depends only on the testbed seed, not on with/without vids.
    workload = CallWorkload(
        params.workload,
        testbed.network.streams.fork("workload"),
        n_callers=len(testbed.phones_a),
        n_callees=len(testbed.phones_b),
    )
    # Shift arrivals past the registration lead.
    base = sim.now
    for planned in workload.calls:
        planned.arrival_time += base
    workload.install(testbed)

    for attack in params.attacks:
        attack.install(testbed)

    faulty_link: Optional[FaultyLink] = None
    if params.fault_plan is not None:
        # links[0] is the router-B (perimeter) side: everything the inline
        # device inspects crosses it in both directions.
        faulty_link = inject_faults(
            testbed.vids_device.links[0], params.fault_plan,
            trace=obs.trace if obs is not None else None)

    for hook in params.hooks:
        hook(testbed, vids, sim)

    end_time = base + params.workload.horizon + params.drain_time
    testbed.network.run(until=end_time)

    if vids is not None:
        # Close the books on a shedding interval still open at the end of
        # the run, so shed_time reflects it (docs/ROBUSTNESS.md).
        vids.flush_shed_interval()

    calls: List[CallRecordStats] = []
    for phone in testbed.phones_a + testbed.phones_b:
        calls.extend(phone.stats)
    calls.sort(key=lambda record: record.placed_at)

    cpu = testbed.vids_device.cpu_utilization(until=end_time)
    return ScenarioResult(
        params=params,
        calls=calls,
        vids=vids,
        cpu_utilization=cpu,
        elapsed=sim.now,
        workload=workload,
        testbed=testbed,
        faulty_link=faulty_link,
    )
