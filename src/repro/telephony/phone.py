"""Softphones: SIP user agents with RTP media on simulated hosts.

A :class:`SoftPhone` is the testbed's "generic Windows PC acting as a SIP
UA" (Section 7.1): it registers with its domain proxy, places calls with an
SDP offer, rings and answers incoming calls after human-scale delays, and
streams G.729 voice (10 ms frames, VAD on) for the call's duration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..netsim.address import Endpoint
from ..netsim.node import Host
from ..rtp.codecs import Codec, G729
from ..rtp.reports import DEFAULT_RTCP_INTERVAL, RtcpReporter
from ..rtp.session import RtpReceiver, RtpSender
from ..sip.sdp import SessionDescription
from ..sip.timers import DEFAULT_TIMERS, TimerTable
from ..sip.uri import SipUri
from ..sip.useragent import Call, UserAgent

__all__ = ["SoftPhone", "CallRecordStats", "PhoneProfile"]

#: First RTP port a phone allocates; each concurrent call gets port + 2*k.
RTP_PORT_BASE = 20_000


@dataclass
class PhoneProfile:
    """Behavioural knobs of a phone."""

    codec: Codec = G729
    ptime_ms: float = 20.0
    #: Seconds between INVITE receipt and sending 180 Ringing.
    ring_delay: float = 0.05
    #: (min, max) seconds the simulated user takes to pick up.
    answer_delay: tuple = (1.0, 3.0)
    #: Speech-activity detection (the testbed enables it for G.729).
    vad: bool = True
    #: Periodic RTCP sender/receiver reports on RTP port + 1.
    rtcp: bool = True
    rtcp_interval: float = DEFAULT_RTCP_INTERVAL


@dataclass
class CallRecordStats:
    """Everything the scenario collector keeps about one finished call leg."""

    call_id: str
    caller: str
    callee: str
    is_caller_side: bool
    placed_at: float
    setup_delay: Optional[float] = None
    established_at: Optional[float] = None
    ended_at: Optional[float] = None
    end_reason: Optional[str] = None
    final_state: Optional[str] = None
    rtp_packets_received: int = 0
    rtp_mean_delay: float = 0.0
    rtp_max_delay: float = 0.0
    rtp_delay_variation: float = 0.0
    rtp_jitter: float = 0.0
    rtp_lost: int = 0

    @property
    def answered(self) -> bool:
        return self.established_at is not None


class _MediaSession:
    """Sender + receiver pair for one call leg."""

    def __init__(self, phone: "SoftPhone", local_port: int):
        self.phone = phone
        self.local_port = local_port
        self.receiver = RtpReceiver(phone.host, local_port,
                                    codec=phone.profile.codec)
        self.sender: Optional[RtpSender] = None
        self.rtcp: Optional[RtcpReporter] = None

    def start_sending(self, remote: Endpoint, rng: random.Random) -> None:
        if self.sender is not None:
            return
        self.sender = RtpSender(
            self.phone.host,
            self.local_port,
            remote,
            codec=self.phone.profile.codec,
            ptime_ms=self.phone.profile.ptime_ms,
            rng=rng,
            vad=self.phone.profile.vad,
        )
        self.sender.start()
        if self.phone.profile.rtcp:
            self.rtcp = RtcpReporter(
                self.phone.host, self.local_port, remote,
                sender=self.sender, receiver=self.receiver,
                interval=self.phone.profile.rtcp_interval)
            self.rtcp.start()

    def stop(self) -> None:
        if self.sender is not None:
            self.sender.stop()
        if self.rtcp is not None:
            self.rtcp.stop()
        # Leave the receiver bound briefly for in-flight packets, then close.
        self.phone.host.sim.schedule(1.0, self._close_receiver)

    def _close_receiver(self) -> None:
        if self.phone.host.is_bound(self.local_port):
            self.receiver.close()
        if self.rtcp is not None:
            self.rtcp.close()


class SoftPhone:
    """A SIP phone with media, attached to one simulated host."""

    def __init__(
        self,
        host: Host,
        aor: str,
        outbound_proxy: Endpoint,
        rng: Optional[random.Random] = None,
        profile: Optional[PhoneProfile] = None,
        timers: TimerTable = DEFAULT_TIMERS,
    ):
        self.host = host
        self.profile = profile or PhoneProfile()
        self.rng = rng or random.Random(0)
        self.ua = UserAgent(host, aor, outbound_proxy, timers=timers)
        self.ua.on_incoming_call = self._on_incoming_call
        self._next_port = RTP_PORT_BASE
        self._media: Dict[str, _MediaSession] = {}   # call-id -> session
        self.stats: List[CallRecordStats] = []
        #: Hook fired with CallRecordStats when a call leg finishes.
        self.on_call_finished: Optional[Callable[[CallRecordStats], None]] = None
        #: When False, incoming calls are rejected with 486 Busy Here.
        self.accept_calls = True

    @property
    def aor(self) -> SipUri:
        return self.ua.aor

    @property
    def sim(self):
        return self.host.sim

    def register(self, on_done: Optional[Callable[[bool], None]] = None) -> None:
        self.ua.register(on_done=on_done)

    # -- outgoing -------------------------------------------------------------

    def place_call(self, callee_aor: str, duration: float) -> Call:
        """Call ``callee_aor`` and hang up ``duration`` seconds after answer."""
        port = self._allocate_port()
        sdp = SessionDescription.for_audio(
            self.host.ip, port,
            self.profile.codec.payload_type, self.profile.codec.name,
            clock_rate=self.profile.codec.clock_rate,
            ptime_ms=int(self.profile.ptime_ms),
        )
        call = self.ua.invite(callee_aor, sdp)
        media = _MediaSession(self, port)
        self._media[call.call_id] = media
        record = CallRecordStats(
            call_id=call.call_id,
            caller=str(self.aor.address_of_record),
            callee=callee_aor.replace("sip:", ""),
            is_caller_side=True,
            placed_at=self.sim.now,
        )

        def on_established(c: Call) -> None:
            record.established_at = self.sim.now
            record.setup_delay = c.setup_delay
            self._start_media(c, media)
            self.sim.schedule(duration, c.hangup)

        def on_terminated(c: Call, reason: str) -> None:
            record.setup_delay = c.setup_delay
            self._finish(c, record, media, reason)

        call.on_established = on_established
        call.on_terminated = on_terminated
        return call

    # -- incoming ------------------------------------------------------------

    def _on_incoming_call(self, call: Call) -> None:
        if not self.accept_calls:
            call.reject(486)
            return
        port = self._allocate_port()
        media = _MediaSession(self, port)
        self._media[call.call_id] = media
        record = CallRecordStats(
            call_id=call.call_id,
            caller=(call.invite_request.from_.uri.address_of_record
                    if call.invite_request and call.invite_request.from_
                    else "?"),
            callee=str(self.aor.address_of_record),
            is_caller_side=False,
            placed_at=self.sim.now,
        )
        answer_sdp = SessionDescription.for_audio(
            self.host.ip, port,
            self.profile.codec.payload_type, self.profile.codec.name,
            clock_rate=self.profile.codec.clock_rate,
            ptime_ms=int(self.profile.ptime_ms),
        )

        def on_established(c: Call) -> None:
            record.established_at = self.sim.now
            self._start_media(c, media)

        def on_terminated(c: Call, reason: str) -> None:
            self._finish(c, record, media, reason)

        call.on_established = on_established
        call.on_terminated = on_terminated
        self.sim.schedule(self.profile.ring_delay, call.ring)
        low, high = self.profile.answer_delay
        self.sim.schedule(self.profile.ring_delay + self.rng.uniform(low, high),
                          lambda: call.accept(answer_sdp))

    # -- media ---------------------------------------------------------------

    def _start_media(self, call: Call, media: _MediaSession) -> None:
        remote_sdp = call.remote_sdp
        if remote_sdp is None or remote_sdp.audio is None:
            return
        remote = Endpoint(remote_sdp.connection_address, remote_sdp.audio.port)
        media.start_sending(remote, self.rng)

    def _finish(self, call: Call, record: CallRecordStats,
                media: _MediaSession, reason: str) -> None:
        media.stop()
        record.ended_at = self.sim.now
        record.end_reason = reason
        record.final_state = call.state.value
        receiver = media.receiver
        record.rtp_packets_received = receiver.packets_received
        record.rtp_mean_delay = receiver.delay_stats.mean
        record.rtp_max_delay = receiver.delay_stats.maximum
        record.rtp_delay_variation = receiver.delay_stats.mean_variation
        record.rtp_jitter = receiver.jitter.jitter_seconds
        record.rtp_lost = receiver.lost_estimate
        self.stats.append(record)
        self._media.pop(call.call_id, None)
        if self.on_call_finished is not None:
            self.on_call_finished(record)

    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 2
        while self.host.is_bound(port):
            port += 2
            self._next_port = port + 2
        return port
