"""Telephony layer: softphones, workload, the Figure-7 testbed, scenarios."""

from .callgen import CallWorkload, PlannedCall, WorkloadParams
from .enterprise import EnterpriseTestbed, TestbedParams, build_testbed
from .phone import CallRecordStats, PhoneProfile, SoftPhone
from .scenario import ScenarioParams, ScenarioResult, run_scenario

__all__ = [
    "CallRecordStats",
    "CallWorkload",
    "EnterpriseTestbed",
    "PhoneProfile",
    "PlannedCall",
    "ScenarioParams",
    "ScenarioResult",
    "SoftPhone",
    "TestbedParams",
    "WorkloadParams",
    "build_testbed",
    "run_scenario",
]
