"""Call workload generation.

"To emulate the realistic call behaviors, in our experiments, the UAs of
network A generate call requests randomly and independently of each other.
The call duration and calling interval between calls are also assumed to be
randomly distributed." (Section 7.1)

Arrivals form a Poisson process (exponential inter-arrival times); call
durations are exponential; caller and callee are drawn uniformly from
networks A and B respectively.  All draws come from named seeded streams so
paired with/without-vids runs see the identical call pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netsim.random import RandomStreams
from .enterprise import EnterpriseTestbed

__all__ = ["WorkloadParams", "PlannedCall", "CallWorkload"]


@dataclass
class WorkloadParams:
    """Shape of the random call workload."""

    #: Mean seconds between call arrivals (Poisson process).
    mean_interarrival: float = 140.0
    #: Mean call duration in seconds (exponential).
    mean_duration: float = 95.0
    #: Workload stops generating new arrivals after this time.
    horizon: float = 7200.0
    #: Minimum call duration (a human call is never 0 seconds).
    min_duration: float = 5.0


@dataclass
class PlannedCall:
    """One arrival drawn from the workload distributions."""

    arrival_time: float
    caller_index: int
    callee_index: int
    duration: float
    call_id: Optional[str] = None


class CallWorkload:
    """Generates and installs a random call pattern on a testbed."""

    def __init__(self, params: WorkloadParams, streams: RandomStreams,
                 n_callers: int, n_callees: int):
        self.params = params
        self._arrival_rng = streams.stream("workload:arrivals")
        self._pick_rng = streams.stream("workload:parties")
        self._duration_rng = streams.stream("workload:durations")
        self.n_callers = n_callers
        self.n_callees = n_callees
        self.calls: List[PlannedCall] = self._draw()

    def _draw(self) -> List[PlannedCall]:
        calls: List[PlannedCall] = []
        time = 0.0
        while True:
            time += self._arrival_rng.expovariate(
                1.0 / self.params.mean_interarrival)
            if time >= self.params.horizon:
                break
            duration = max(
                self.params.min_duration,
                self._duration_rng.expovariate(1.0 / self.params.mean_duration),
            )
            calls.append(PlannedCall(
                arrival_time=time,
                caller_index=self._pick_rng.randrange(self.n_callers),
                callee_index=self._pick_rng.randrange(self.n_callees),
                duration=duration,
            ))
        return calls

    def install(self, testbed: EnterpriseTestbed) -> None:
        """Schedule every planned call on the testbed's simulator."""
        sim = testbed.sim
        for planned in self.calls:
            caller = testbed.phones_a[planned.caller_index]
            callee = testbed.phones_b[planned.callee_index]
            callee_aor = f"sip:{callee.aor.address_of_record}"

            def place(caller=caller, callee_aor=callee_aor, planned=planned):
                call = caller.place_call(callee_aor, planned.duration)
                planned.call_id = call.call_id

            sim.schedule_at(planned.arrival_time, place)

    # -- Figure 8 series ---------------------------------------------------

    def arrival_series(self, bucket: float = 60.0) -> List[int]:
        """Call arrivals per time bucket (the Figure-8 arrivals plot)."""
        n_buckets = int(self.params.horizon // bucket) + 1
        counts = [0] * n_buckets
        for planned in self.calls:
            counts[int(planned.arrival_time // bucket)] += 1
        return counts

    def duration_series(self) -> List[float]:
        """Per-call durations in arrival order (the Figure-8 duration plot)."""
        return [planned.duration for planned in self.calls]
