"""The Figure-7 testbed topology: two enterprise networks over the Internet.

Network A (domain ``a.example.com``) and network B (``b.example.com``) each
consist of N softphones and one SIP proxy hanging off a 100BaseT hub, an
edge router, and a DS1 uplink into an Internet cloud with 50 ms one-way
delay and 0.42 % loss.  The vids host is an inline device "strategically
located between the edge router and the hub of network B, allowing the
visibility of all traffic" — exactly where the paper puts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..netsim.inline import InlineDevice, PacketProcessor
from ..netsim.internet import InternetCloud
from ..netsim.link import BPS_100BASET, BPS_DS1
from ..netsim.network import Network
from ..netsim.node import Host, Hub, Router
from ..sip.dns import DomainDirectory
from ..sip.proxy import ProxyServer
from ..sip.timers import DEFAULT_TIMERS, TimerTable
from .phone import PhoneProfile, SoftPhone

__all__ = ["EnterpriseTestbed", "TestbedParams", "build_testbed"]

#: LAN propagation delay (100BaseT segment).
LAN_DELAY = 0.00005
#: Access-link propagation delay (router to cloud).
WAN_DELAY = 0.001


@dataclass
class TestbedParams:
    """Parameters of the simulated testbed (paper Section 7.1 defaults)."""

    # Not a test case, despite the name (silences pytest collection).
    __test__ = False

    phones_per_network: int = 10
    internet_delay: float = 0.050
    internet_loss: float = 0.0042
    uplink_bps: float = BPS_DS1
    #: Drop-tail buffering at the access links (seconds of queueing).
    uplink_buffer_delay: float = 0.2
    lan_bps: float = BPS_100BASET
    seed: int = 1
    phone_profile: PhoneProfile = field(default_factory=PhoneProfile)
    sip_timers: TimerTable = DEFAULT_TIMERS
    #: Enable digest authentication at both registrars; phones are
    #: provisioned with per-user passwords automatically.
    registrar_auth: bool = False


@dataclass
class EnterpriseTestbed:
    """Everything the scenarios and benchmarks need to reach."""

    network: Network
    params: TestbedParams
    dns: DomainDirectory
    proxy_a: ProxyServer
    proxy_b: ProxyServer
    phones_a: List[SoftPhone]
    phones_b: List[SoftPhone]
    vids_device: InlineDevice
    internet: InternetCloud
    router_a: Router
    router_b: Router
    hub_a: Hub
    hub_b: Hub

    @property
    def sim(self):
        return self.network.sim

    def attach_processor(self, processor: Optional[PacketProcessor]) -> None:
        """Install vids (or None for the forward-only baseline host)."""
        if processor is None:
            from ..netsim.inline import NullProcessor
            processor = NullProcessor()
        self.vids_device.processor = processor

    def register_all(self) -> None:
        for phone in self.phones_a + self.phones_b:
            phone.register()

    def phone(self, user: str) -> SoftPhone:
        """Find a phone by its user name (e.g. ``"a3"``)."""
        for phone in self.phones_a + self.phones_b:
            if phone.aor.user == user:
                return phone
        raise KeyError(user)


def build_testbed(params: Optional[TestbedParams] = None) -> EnterpriseTestbed:
    """Wire up the Figure-7 topology and return the testbed handle."""
    params = params or TestbedParams()
    net = Network(seed=params.seed)
    streams = net.streams

    internet = InternetCloud(net, transit_delay=params.internet_delay,
                             loss_rate=params.internet_loss)
    router_a = Router(net, "router-a")
    router_b = Router(net, "router-b")
    hub_a = Hub(net, "hub-a")
    hub_b = Hub(net, "hub-b")
    vids_device = InlineDevice(net, "vids-host")

    # Network A: router -- hub -- {proxy, phones}.
    net.link(router_a, hub_a, bandwidth_bps=params.lan_bps,
             propagation_delay=LAN_DELAY)
    # Network B: router -- vids -- hub -- {proxy, phones}.
    net.link(router_b, vids_device, bandwidth_bps=params.lan_bps,
             propagation_delay=LAN_DELAY)
    net.link(vids_device, hub_b, bandwidth_bps=params.lan_bps,
             propagation_delay=LAN_DELAY)
    # Uplinks into the cloud.
    net.link(router_a, internet, bandwidth_bps=params.uplink_bps,
             propagation_delay=WAN_DELAY,
             max_queue_delay=params.uplink_buffer_delay)
    net.link(router_b, internet, bandwidth_bps=params.uplink_bps,
             propagation_delay=WAN_DELAY,
             max_queue_delay=params.uplink_buffer_delay)

    dns = DomainDirectory()
    proxy_host_a = Host(net, "proxy-a", "10.1.0.1")
    proxy_host_b = Host(net, "proxy-b", "10.2.0.1")
    net.link(proxy_host_a, hub_a, bandwidth_bps=params.lan_bps,
             propagation_delay=LAN_DELAY)
    net.link(proxy_host_b, hub_b, bandwidth_bps=params.lan_bps,
             propagation_delay=LAN_DELAY)
    auth_a = auth_b = None
    if params.registrar_auth:
        from ..sip.auth import Authenticator
        auth_a = Authenticator("a.example.com")
        auth_b = Authenticator("b.example.com")
    proxy_a = ProxyServer(proxy_host_a, "a.example.com", dns,
                          authenticator=auth_a)
    proxy_b = ProxyServer(proxy_host_b, "b.example.com", dns,
                          authenticator=auth_b)

    phones_a: List[SoftPhone] = []
    phones_b: List[SoftPhone] = []
    for index in range(params.phones_per_network):
        host_a = Host(net, f"phone-a{index + 1}", f"10.1.0.{11 + index}")
        net.link(host_a, hub_a, bandwidth_bps=params.lan_bps,
                 propagation_delay=LAN_DELAY)
        phone_a = SoftPhone(
            host_a, f"sip:a{index + 1}@a.example.com", proxy_a.endpoint,
            rng=streams.stream(f"phone-a{index + 1}"),
            profile=params.phone_profile, timers=params.sip_timers)
        phones_a.append(phone_a)

        host_b = Host(net, f"phone-b{index + 1}", f"10.2.0.{11 + index}")
        net.link(host_b, hub_b, bandwidth_bps=params.lan_bps,
                 propagation_delay=LAN_DELAY)
        phone_b = SoftPhone(
            host_b, f"sip:b{index + 1}@b.example.com", proxy_b.endpoint,
            rng=streams.stream(f"phone-b{index + 1}"),
            profile=params.phone_profile, timers=params.sip_timers)
        phones_b.append(phone_b)

        if params.registrar_auth:
            from ..sip.auth import DigestCredentials
            for phone, auth, domain in ((phone_a, auth_a, "a.example.com"),
                                        (phone_b, auth_b, "b.example.com")):
                user = phone.aor.user or ""
                password = f"pw-{user}"
                auth.add_user(user, password)
                phone.ua.credentials = DigestCredentials(user, domain,
                                                         password)

    net.compute_routes()
    return EnterpriseTestbed(
        network=net,
        params=params,
        dns=dns,
        proxy_a=proxy_a,
        proxy_b=proxy_b,
        phones_a=phones_a,
        phones_b=phones_b,
        vids_device=vids_device,
        internet=internet,
        router_a=router_a,
        router_b=router_b,
        hub_a=hub_a,
        hub_b=hub_b,
    )
