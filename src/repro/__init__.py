"""Reproduction of *VoIP Intrusion Detection Through Interacting Protocol
State Machines* (Sengar, Wijesekera, Wang, Jajodia — DSN 2006).

Subpackages:

- :mod:`repro.netsim` — discrete-event network simulator (OPNET substitute);
- :mod:`repro.sip` — SIP stack (RFC 3261 subset): messages, transactions,
  dialogs, user agents, proxies, registrar;
- :mod:`repro.rtp` — RTP media stack (RFC 3550 subset): packets, codecs,
  sessions, jitter, RTCP;
- :mod:`repro.efsm` — extended finite state machines and communicating-EFSM
  systems (the paper's Section 4 formal model);
- :mod:`repro.vids` — the paper's contribution: the intrusion detection
  system built on interacting protocol state machines;
- :mod:`repro.telephony` — softphones, call workload, the Figure-7 testbed,
  and the scenario runner behind every experiment;
- :mod:`repro.attacks` — injectors for every Section-3 threat;
- :mod:`repro.analysis` — statistics and report formatting.

Quick start::

    from repro.telephony import ScenarioParams, run_scenario
    from repro.attacks import ByeTeardownAttack

    result = run_scenario(ScenarioParams(
        attacks=(ByeTeardownAttack(start_time=60.0, spoof="none"),),
    ))
    print(result.summary())
    for alert in result.vids.alerts:
        print(alert)
"""

from . import analysis, attacks, efsm, netsim, rtp, sip, telephony, vids
from .telephony import ScenarioParams, ScenarioResult, run_scenario
from .vids import Vids, VidsConfig

__version__ = "1.0.0"

__all__ = [
    "ScenarioParams",
    "ScenarioResult",
    "Vids",
    "VidsConfig",
    "analysis",
    "attacks",
    "efsm",
    "netsim",
    "rtp",
    "sip",
    "telephony",
    "vids",
    "run_scenario",
]
