"""Structural analysis of EFSM definitions.

The paper (Section 4.2): "We are interested in the configurations that are
reachable from the initial or intermediate configuration to the attack
configuration through zero or more intermediate states.  The paths along
the transitions from s_i to s_attack constitute attack patterns."

This module computes those objects on the transition *structure* (ignoring
predicate valuations, which over-approximates reachability — sound for
enumeration of candidate attack patterns):

- :func:`reachable_states` — states reachable from the initial state;
- :func:`attack_paths` — for every attack state, one shortest transition
  path from the initial state (the canonical attack pattern);
- :func:`event_coverage` — which alphabet events can ever fire from each
  state (useful for reviewing specification completeness);
- :func:`summarize_machine` — a human-readable structural summary.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from .machine import Efsm, Transition

__all__ = ["reachable_states", "coreachable_states", "attack_paths",
           "event_coverage", "summarize_machine"]


def reachable_states(machine: Efsm,
                     start: Optional[str] = None) -> Set[str]:
    """States structurally reachable from ``start`` (default: initial)."""
    start = start or machine.initial_state
    seen = {start}
    frontier = deque([start])
    outgoing: Dict[str, List[Transition]] = {}
    for transition in machine.transitions:
        outgoing.setdefault(transition.source, []).append(transition)
    while frontier:
        state = frontier.popleft()
        for transition in outgoing.get(state, ()):
            if transition.target not in seen:
                seen.add(transition.target)
                frontier.append(transition.target)
    return seen


def coreachable_states(machine: Efsm,
                       targets: Optional[Set[str]] = None) -> Set[str]:
    """States from which some target (default: final) state is reachable.

    The complement over reachable states is the set of *dead* states: a call
    wedged there can never complete, so its record would only ever leave the
    fact base via the idle-TTL garbage collector.  Spec-lint flags those.
    """
    targets = set(machine.final_states if targets is None else targets)
    incoming: Dict[str, List[Transition]] = {}
    for transition in machine.transitions:
        incoming.setdefault(transition.target, []).append(transition)
    seen = set(targets)
    frontier = deque(targets)
    while frontier:
        state = frontier.popleft()
        for transition in incoming.get(state, ()):
            if transition.source not in seen:
                seen.add(transition.source)
                frontier.append(transition.source)
    return seen


def attack_paths(machine: Efsm,
                 start: Optional[str] = None
                 ) -> Dict[str, List[Transition]]:
    """Shortest transition path from ``start`` to each attack state.

    Returns a mapping attack-state -> list of transitions (the paper's
    "attack pattern"); unreachable attack states are omitted.
    """
    start = start or machine.initial_state
    outgoing: Dict[str, List[Transition]] = {}
    for transition in machine.transitions:
        outgoing.setdefault(transition.source, []).append(transition)

    # BFS keeping the first (shortest) path to every state.
    paths: Dict[str, List[Transition]] = {start: []}
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        for transition in outgoing.get(state, ()):
            if transition.target not in paths:
                paths[transition.target] = paths[state] + [transition]
                frontier.append(transition.target)

    return {state: path for state, path in paths.items()
            if state in machine.attack_states}


def event_coverage(machine: Efsm) -> Dict[str, Set[str]]:
    """For each state, the set of event names with an outgoing transition.

    States missing events from the alphabet are where unexpected traffic
    shows up as deviations — reviewing this table is how one audits the
    specification's completeness.
    """
    coverage: Dict[str, Set[str]] = {state: set() for state in machine.states}
    for transition in machine.transitions:
        coverage[transition.source].add(transition.event_name)
    return coverage


def summarize_machine(machine: Efsm) -> str:
    """A text summary: states, reachability, attack patterns."""
    reachable = reachable_states(machine)
    lines = [
        f"machine {machine.name!r}: {len(machine.states)} states, "
        f"{len(machine.transitions)} transitions, "
        f"alphabet {sorted(machine.alphabet)}",
        f"initial: {machine.initial_state}; "
        f"final: {sorted(machine.final_states)}; "
        f"attack: {sorted(machine.attack_states)}",
        f"reachable: {len(reachable)}/{len(machine.states)}",
        "attack patterns (shortest structural paths):",
    ]
    for state, path in sorted(attack_paths(machine).items()):
        steps = " -> ".join(
            f"{t.source} --{t.event_name}-->" for t in path
        ) + f" {state}" if path else state
        lines.append(f"  [{len(path)} steps] {steps}")
    return "\n".join(lines)
