"""Events for extended finite state machines.

The paper (Definition 1) gives each event a name and arguments, and uses CSP
notation to distinguish input events ``c?event(x)`` from output events
``c!event(x)`` on a channel ``c``.  Here an :class:`Event` carries its name,
its argument vector ``x`` (a mapping), and the channel it arrived on —
``None`` for data-packet events from the network, a channel name for
synchronization messages between protocol machines, and ``"timer"`` for
expirations of timers started by transition actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["Event", "TIMER_CHANNEL"]

#: Pseudo-channel on which timer-expiry events are delivered.
TIMER_CHANNEL = "timer"


@dataclass(frozen=True, slots=True)
class Event:
    """An event instance: name, argument vector x, and originating channel.

    ``slots=True``: one Event is allocated per packet on the vids hot path,
    so the per-instance ``__dict__`` is worth eliminating.
    """

    name: str
    args: Mapping[str, Any] = field(default_factory=dict)
    channel: Optional[str] = None
    time: float = 0.0

    def __getitem__(self, key: str) -> Any:
        return self.args[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.args.get(key, default)

    @property
    def is_sync(self) -> bool:
        """True for inter-machine synchronization events (``c?δ``)."""
        return self.channel is not None and self.channel != TIMER_CHANNEL

    @property
    def is_timer(self) -> bool:
        return self.channel == TIMER_CHANNEL

    def describe(self) -> str:
        """CSP-style rendering, e.g. ``sip->rtp?delta(call_id=...)``."""
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.args.items()))
        prefix = f"{self.channel}?" if self.channel else ""
        return f"{prefix}{self.name}({args})"
