"""Graphviz export of EFSM definitions (documentation/debugging aid)."""

from __future__ import annotations

from .machine import Efsm

__all__ = ["to_dot"]


def to_dot(machine: Efsm) -> str:
    """Render a machine as Graphviz dot text.

    Attack states are drawn as red double octagons, final states as double
    circles, matching the visual conventions of the paper's figures.
    """
    lines = [f'digraph "{machine.name}" {{', "  rankdir=LR;"]
    lines.append('  __start [shape=point, label=""];')
    for state in machine.states:
        attrs = ["shape=ellipse"]
        if state in machine.attack_states:
            attrs = ["shape=doubleoctagon", "color=red", "fontcolor=red"]
        elif state in machine.final_states:
            attrs = ["shape=doublecircle"]
        lines.append(f'  "{state}" [{", ".join(attrs)}];')
    lines.append(f'  __start -> "{machine.initial_state}";')
    for transition in machine.transitions:
        label_parts = [transition.event_name]
        if transition.channel:
            label_parts[0] = f"{transition.channel}?{transition.event_name}"
        if transition.predicate is not None:
            label_parts.append("[P]")
        if transition.outputs:
            label_parts.extend(
                f"{output.channel}!{output.event_name}"
                for output in transition.outputs
            )
        label = "\\n".join(label_parts)
        edge_attrs = [f'label="{label}"']
        if transition.attack:
            edge_attrs.append("color=red")
        lines.append(
            f'  "{transition.source}" -> "{transition.target}"'
            f' [{", ".join(edge_attrs)}];'
        )
    lines.append("}")
    return "\n".join(lines)
