"""Graphviz export of EFSM definitions (documentation/debugging aid)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from .diagnostics import Diagnostic, Severity
from .machine import Efsm

__all__ = ["to_dot"]

_SEVERITY_FILL = {
    Severity.ERROR: "#f8d0d0",
    Severity.WARNING: "#fdeec7",
    Severity.INFO: "#e8eef8",
}
_SEVERITY_EDGE = {
    Severity.ERROR: "#c0392b",
    Severity.WARNING: "#b8860b",
    Severity.INFO: "#3b6ea5",
}


def _index_diagnostics(machine: Efsm,
                       diagnostics: Optional[Iterable[Diagnostic]]
                       ) -> Tuple[Dict[str, Diagnostic],
                                  Dict[str, Diagnostic]]:
    """Worst finding per state and per transition-describe() string.

    ``event-coverage-gap`` findings are skipped: nearly every state has one
    by design, so painting them would drown the signal.
    """
    by_state: Dict[str, Diagnostic] = {}
    by_transition: Dict[str, Diagnostic] = {}
    for diagnostic in diagnostics or ():
        if diagnostic.machine not in (None, machine.name):
            continue
        if diagnostic.rule == "event-coverage-gap":
            continue
        describes: Set[str] = set(diagnostic.data.get("transitions", ()))
        if diagnostic.transition:
            describes.add(diagnostic.transition)
        for describe in describes:
            worst = by_transition.get(describe)
            if worst is None or diagnostic.severity > worst.severity:
                by_transition[describe] = diagnostic
        if diagnostic.state and not describes:
            worst = by_state.get(diagnostic.state)
            if worst is None or diagnostic.severity > worst.severity:
                by_state[diagnostic.state] = diagnostic
    return by_state, by_transition


def to_dot(machine: Efsm,
           diagnostics: Optional[Iterable[Diagnostic]] = None) -> str:
    """Render a machine as Graphviz dot text.

    Attack states are drawn as red double octagons, final states as double
    circles, matching the visual conventions of the paper's figures.

    When ``diagnostics`` (spec-lint findings from ``repro.efsm.verify``) are
    given, flagged states are filled by severity (red/amber/blue) with the
    rule id appended to the node label, and flagged transitions — dead
    states' incoming arcs, shadowed nondeterministic alternatives, wedged
    sync receives — are drawn bold in the severity color.
    """
    by_state, by_transition = _index_diagnostics(machine, diagnostics)
    lines = [f'digraph "{machine.name}" {{', "  rankdir=LR;"]
    lines.append('  __start [shape=point, label=""];')
    for state in machine.states:
        attrs = ["shape=ellipse"]
        if state in machine.attack_states:
            attrs = ["shape=doubleoctagon", "color=red", "fontcolor=red"]
        elif state in machine.final_states:
            attrs = ["shape=doublecircle"]
        flagged = by_state.get(state)
        if flagged is not None:
            attrs.append("style=filled")
            attrs.append(f'fillcolor="{_SEVERITY_FILL[flagged.severity]}"')
            attrs.append(f'label="{state}\\n[{flagged.rule}]"')
        lines.append(f'  "{state}" [{", ".join(attrs)}];')
    lines.append(f'  __start -> "{machine.initial_state}";')
    for transition in machine.transitions:
        label_parts = [transition.event_name]
        if transition.channel:
            label_parts[0] = f"{transition.channel}?{transition.event_name}"
        if transition.predicate is not None:
            label_parts.append("[P]")
        if transition.outputs:
            label_parts.extend(
                f"{output.channel}!{output.event_name}"
                for output in transition.outputs
            )
        edge_attrs = []
        if transition.attack:
            edge_attrs.append("color=red")
        flagged = by_transition.get(transition.describe())
        if flagged is not None:
            label_parts.append(f"[{flagged.rule}]")
            edge_attrs = [f'color="{_SEVERITY_EDGE[flagged.severity]}"',
                          "penwidth=2.2"]
        label = "\\n".join(label_parts)
        edge_attrs.insert(0, f'label="{label}"')
        lines.append(
            f'  "{transition.source}" -> "{transition.target}"'
            f' [{", ".join(edge_attrs)}];'
        )
    lines.append("}")
    return "\n".join(lines)
