"""EFSM mining: learn protocol state machines from call traces.

The obs layer exports seq-ordered per-call event timelines (``fire`` /
``delta`` / ``call-created`` trace events); this module turns them back
into :class:`~repro.efsm.machine.Efsm` objects — the classic passive-
learning pipeline:

1. **corpus extraction** (:func:`extract_corpus`) groups trace events into
   per-call, per-machine step sequences, accumulating the bounded
   changed-variable snapshots (``VidsConfig.trace_variables``) back into
   full valuations, and excluding (while counting) calls whose timeline
   does not start at ``call-created`` — the ring may have evicted their
   head, so learning from them would invent truncated behaviour;
2. **prefix-tree acceptor** construction per machine, every trace a root
   path, every edge keyed by (event name, channel) and carrying the
   observations (event args, pre-step valuation, recorded spec states)
   that later feed guard synthesis;
3. **k-tails merging**: states whose outgoing behaviour agrees to depth
   ``k`` (with an end-of-trace marker, so "can stop here" is part of the
   signature) are the same learned state;
4. **determinization with guard synthesis**: when a merged state has one
   (event, channel) leading to several targets, the miner first tries to
   synthesize mutually disjoint guards over the recorded event arguments
   (equality in-set, else numeric interval); only when no separating
   field exists are the targets folded together — so mined machines pass
   the same determinism discipline (speclint, compiled dispatch) as the
   hand-written ones.

The result is a real :class:`Efsm` built through the ordinary machine API:
``validate()``, ``speclint``, and ``to_dot`` work on it unchanged, and
:func:`replay_sequence` re-delivers a training sequence to prove the model
accepts it.  ``repro.efsm.specdiff`` diffs mined machines against the
hand-written specifications; ``repro.vids.anomaly`` scores live calls by
distance from the mined model.  See docs/MINING.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..obs.trace import TraceBus, TraceEvent, TraceExport
from .events import Event, TIMER_CHANNEL
from .machine import Efsm, EfsmInstance, FiringResult

__all__ = [
    "CallSequence",
    "GuardSpec",
    "MinedMachine",
    "MiningCorpus",
    "Observation",
    "StepRecord",
    "extract_corpus",
    "mine",
    "mine_machine",
    "replay_sequence",
]

#: Default k-tails depth: 2 keeps retransmit self-loops distinct from
#: first-time transitions while still folding long call bodies.
DEFAULT_K = 2

#: End-of-trace marker inside k-tail signatures: a state where traces may
#: stop is behaviourally different from one where they never do.
_END = "$"

_MISSING = object()


# ---------------------------------------------------------------------------
# Corpus extraction
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class StepRecord:
    """One observed firing: the miner's unit of evidence."""

    event: str
    channel: Optional[str]
    from_state: str          # spec machine's state when the event arrived
    to_state: str
    args: Dict[str, Any]     # event argument vector x (if traced)
    valuation: Dict[str, Any]  # pre-step variable vector v (accumulated)
    time: float = 0.0

    @property
    def key(self) -> Tuple[str, Optional[str]]:
        return (self.event, self.channel)


@dataclass(slots=True)
class CallSequence:
    """The training steps of one (call, machine) timeline."""

    call_id: str
    machine: str
    steps: List[StepRecord] = field(default_factory=list)


@dataclass(slots=True)
class MiningCorpus:
    """Per-machine training sequences plus exclusion accounting.

    The counters make the miner's blind spots explicit: a consumer can see
    how many calls were unusable (ring truncation, checkpoint restores),
    how many were set aside as attack-labelled, and whether the source
    export itself reported drops.
    """

    sequences: Dict[str, List[CallSequence]] = field(default_factory=dict)
    calls_seen: int = 0
    calls_trained: int = 0
    #: Calls excluded because their timeline does not start at
    #: ``call-created`` (ring-evicted head or mid-call checkpoint restore).
    calls_truncated: int = 0
    #: Calls excluded because an attack transition fired in them.
    calls_excluded_attack: int = 0
    #: Deviation firings skipped inside otherwise-trained calls.
    deviation_steps: int = 0
    #: Drop count reported by the export's ``$meta`` header (0 when the
    #: source was a live bus or a headerless export).
    dropped_events: int = 0

    def machines(self) -> List[str]:
        return sorted(self.sequences)

    def summary(self) -> Dict[str, Any]:
        return {
            "calls_seen": self.calls_seen,
            "calls_trained": self.calls_trained,
            "calls_truncated": self.calls_truncated,
            "calls_excluded_attack": self.calls_excluded_attack,
            "deviation_steps": self.deviation_steps,
            "dropped_events": self.dropped_events,
            "sequences": {name: len(seqs)
                          for name, seqs in sorted(self.sequences.items())},
        }


TraceSource = Union[TraceExport, TraceBus, Iterable[TraceEvent]]


def extract_corpus(source: TraceSource,
                   include_attacks: bool = False) -> MiningCorpus:
    """Group trace events into per-call, per-machine step sequences.

    ``source`` is a parsed export (:func:`repro.obs.from_jsonl`), a live
    :class:`TraceBus`, or any iterable of :class:`TraceEvent`.  Only calls
    whose timeline starts at ``call-created`` are trained; ``call-restored``
    timelines resume mid-call, so they are counted as truncated too.
    """
    corpus = MiningCorpus()
    if isinstance(source, TraceExport):
        corpus.dropped_events = source.dropped
        events: Iterable[TraceEvent] = source.events
    elif isinstance(source, TraceBus):
        corpus.dropped_events = source.dropped
        events = source.events()
    else:
        events = source

    started: set = set()           # call ids that began inside the window
    truncated: set = set()         # call ids first seen mid-call
    attacked: set = set()          # call ids with an attack firing
    # (call_id, machine) -> CallSequence / accumulated valuation
    sequences: Dict[Tuple[str, str], CallSequence] = {}
    valuations: Dict[Tuple[str, str], Dict[str, Any]] = {}
    # call_id -> {delta event name -> channel}: fallback channel inference
    # for exports written before fire events carried ``channel``.
    delta_channels: Dict[str, Dict[str, str]] = {}

    for event in events:
        kind = event.kind
        call_id = event.call_id
        if call_id is None:
            continue
        if kind == "call-created":
            started.add(call_id)
            continue
        if kind == "call-restored":
            if call_id not in started:
                truncated.add(call_id)
            continue
        if kind == "delta":
            channel = event.data.get("channel")
            name = event.data.get("event")
            if channel and name:
                delta_channels.setdefault(call_id, {})[name] = channel
            continue
        if kind != "fire":
            continue
        if call_id not in started:
            truncated.add(call_id)
            continue
        if call_id in truncated:
            continue
        data = event.data
        machine = data.get("machine")
        name = data.get("event")
        if machine is None or name is None:
            continue
        if data.get("attack"):
            attacked.add(call_id)
        key = (call_id, machine)
        valuation = valuations.setdefault(key, {})
        if data.get("deviation"):
            corpus.deviation_steps += 1
            # Deviations leave the state unchanged and fire no action, so
            # the surrounding steps remain a consistent training sequence.
            continue
        channel = data.get("channel", _MISSING)
        if channel is _MISSING:
            channel = _infer_channel(name, delta_channels.get(call_id))
        sequence = sequences.get(key)
        if sequence is None:
            sequence = sequences[key] = CallSequence(call_id, machine)
        sequence.steps.append(StepRecord(
            event=name,
            channel=channel,
            from_state=data.get("from_state", ""),
            to_state=data.get("to_state", ""),
            args=dict(data.get("args") or {}),
            valuation=dict(valuation),
            time=event.time,
        ))
        changed = data.get("vars")
        if changed:
            valuation.update(changed)

    corpus.calls_seen = len(started | truncated)
    corpus.calls_truncated = len(truncated)
    trained_calls: set = set()
    for (call_id, machine), sequence in sequences.items():
        if not include_attacks and call_id in attacked:
            continue
        if not sequence.steps:
            continue
        corpus.sequences.setdefault(machine, []).append(sequence)
        trained_calls.add(call_id)
    corpus.calls_trained = len(trained_calls)
    corpus.calls_excluded_attack = len(
        attacked - truncated) if not include_attacks else 0
    return corpus


def _infer_channel(event_name: str,
                   deltas: Optional[Dict[str, str]]) -> Optional[str]:
    """Best-effort channel for pre-v2 exports lacking the ``channel`` field."""
    if deltas and event_name in deltas:
        return deltas[event_name]
    if event_name == "T":
        return TIMER_CHANNEL
    return None


# ---------------------------------------------------------------------------
# Guard synthesis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GuardSpec:
    """A synthesized predicate over one event-argument field.

    ``in-set`` guards accept a finite value set; ``interval`` guards accept
    a closed numeric range.  Sibling guards of one (state, event, channel)
    group are mutually disjoint by construction, so mined machines satisfy
    the paper's P_i ∧ P_j = ∅ requirement and compile to guarded chains.
    """

    field: str
    kind: str                    # "in-set" | "interval"
    values: Optional[frozenset] = None
    lo: float = 0.0
    hi: float = 0.0

    def describe(self) -> str:
        if self.kind == "in-set":
            rendered = ", ".join(repr(v) for v in sorted(
                self.values, key=repr))
            return f"x[{self.field!r}] in {{{rendered}}}"
        return f"{self.lo!r} <= x[{self.field!r}] <= {self.hi!r}"

    def admits(self, args: Mapping[str, Any]) -> bool:
        value = args.get(self.field, _MISSING)
        if self.kind == "in-set":
            try:
                return value in self.values
            except TypeError:
                return False
        return (isinstance(value, (int, float))
                and not isinstance(value, bool)
                and self.lo <= value <= self.hi)

    def build(self):
        """The guard as an Efsm predicate (pure closure over frozen data)."""
        spec = self

        def predicate(ctx, _spec=spec):
            return _spec.admits(ctx.x)

        predicate.__guard_spec__ = spec
        predicate.__name__ = f"mined_guard_{spec.field}"
        return predicate


#: A field with more distinct values than this never becomes a guard —
#: in-set guards that long are memorized identifiers, not predicates.
_MAX_GUARD_CARDINALITY = 16

#: With this much evidence, a field whose values are mostly distinct
#: (>= half as many values as observations) is treated as a per-call
#: counter/identifier (seq numbers, timestamps) and skipped: it can
#: separate the *training* branches by coincidence but rejects all
#: future traffic.
_IDENTIFIER_MIN_EVIDENCE = 6


def _hashable_scalar(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _synthesize_guards(
        branches: List[List["Observation"]]) -> Optional[List[GuardSpec]]:
    """Disjoint per-branch guards over one shared argument field, or None.

    Tries every field present in *every* observation of *every* branch.
    All-numeric fields whose per-branch [min, max] ranges are pairwise
    disjoint become interval guards — the widest sound generalization, so
    unseen values inside a branch's observed range still route to that
    branch.  Otherwise, pairwise-disjoint per-branch value sets become
    equality in-set guards.  (Interval must be tried first: disjoint
    numeric ranges imply disjoint value sets, so an in-set-first order
    would never emit an interval.)
    """
    if not branches or any(not branch for branch in branches):
        return None
    fields = set(branches[0][0].args)
    for branch in branches:
        for observation in branch:
            fields &= set(observation.args)
    for name in sorted(fields):
        value_sets: List[set] = []
        usable = True
        for branch in branches:
            values = set()
            for observation in branch:
                value = observation.args[name]
                if not _hashable_scalar(value):
                    usable = False
                    break
                values.add(value)
            if not usable:
                break
            value_sets.append(values)
        if not usable:
            continue
        distinct = sum(len(values) for values in value_sets)
        evidence = sum(len(branch) for branch in branches)
        if distinct > _MAX_GUARD_CARDINALITY:
            continue
        if evidence >= _IDENTIFIER_MIN_EVIDENCE and distinct * 2 >= evidence:
            continue
        numeric = all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for values in value_sets for value in values)
        if numeric:
            ranges = [(min(values), max(values)) for values in value_sets]
            ordered = sorted(range(len(ranges)), key=lambda i: ranges[i][0])
            overlap = any(
                ranges[ordered[i + 1]][0] <= ranges[ordered[i]][1]
                for i in range(len(ordered) - 1))
            if not overlap:
                return [GuardSpec(field=name, kind="interval",
                                  lo=lo, hi=hi) for lo, hi in ranges]
        disjoint = all(
            value_sets[i].isdisjoint(value_sets[j])
            for i in range(len(value_sets))
            for j in range(i + 1, len(value_sets)))
        if disjoint:
            return [GuardSpec(field=name, kind="in-set",
                              values=frozenset(values))
                    for values in value_sets]
    return None


# ---------------------------------------------------------------------------
# PTA + k-tails + determinization
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class Observation:
    """One piece of evidence attached to a mined transition."""

    args: Dict[str, Any]
    valuation: Dict[str, Any]
    spec_from: str           # spec machine's state labels at firing time
    spec_to: str
    time: float = 0.0


class _PtaNode:
    """Edges are keyed ``(event, channel, spec_to_label)`` — two firings of
    the same event that the spec machine resolved to different states stay
    distinct branches, so guard synthesis gets a chance to separate them
    before determinization folds them together."""

    __slots__ = ("children", "observations", "ends", "labels")

    def __init__(self):
        self.children: Dict[Tuple[str, Optional[str], str], int] = {}
        self.observations: Dict[
            Tuple[str, Optional[str], str], List[Observation]] = {}
        self.ends = 0
        self.labels: Counter = Counter()


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:      # path compression
            parent[item], item = root, parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[max(ra, rb)] = min(ra, rb)
        return True


def _build_pta(sequences: List[CallSequence]) -> List[_PtaNode]:
    nodes = [_PtaNode()]
    for sequence in sequences:
        current = 0
        for step in sequence.steps:
            node = nodes[current]
            node.labels[step.from_state] += 1
            edge = (step.event, step.channel, step.to_state)
            child = node.children.get(edge)
            if child is None:
                child = len(nodes)
                nodes.append(_PtaNode())
                node.children[edge] = child
            node.observations.setdefault(edge, []).append(Observation(
                args=step.args, valuation=step.valuation,
                spec_from=step.from_state, spec_to=step.to_state,
                time=step.time))
            current = child
        nodes[current].ends += 1
        if sequence.steps:
            nodes[current].labels[sequence.steps[-1].to_state] += 1
    return nodes


def _tails(nodes: List[_PtaNode], node_id: int, depth: int,
           memo: Dict[Tuple[int, int], frozenset]) -> frozenset:
    """Outgoing behaviour of a PTA node to ``depth`` edges (plus $-ends)."""
    cached = memo.get((node_id, depth))
    if cached is not None:
        return cached
    node = nodes[node_id]
    paths = set()
    if node.ends:
        paths.add((_END,))
    for key, child in node.children.items():
        # The signature alphabet is the *observable* (event, channel)
        # pair; the spec-label component of the edge key is not future
        # behaviour, so it is projected away here.
        head = key[:2]
        if depth <= 1:
            paths.add((head,))
            continue
        child_tails = _tails(nodes, child, depth - 1, memo)
        if child_tails:
            for tail in child_tails:
                paths.add((head,) + tail)
        else:
            paths.add((head,))
    result = frozenset(paths)
    memo[(node_id, depth)] = result
    return result


def _merge_k_tails(nodes: List[_PtaNode], k: int) -> _UnionFind:
    """Merge nodes that agree on spec labels and depth-``k`` futures.

    The spec-label component keeps states the specification distinguishes
    (e.g. ``Up`` vs ``Failed`` after the same response event) from being
    folded just because both end the trace; determinization later folds
    label-distinct siblings anyway when no guard can separate them.
    """
    union = _UnionFind(len(nodes))
    memo: Dict[Tuple[int, int], frozenset] = {}
    by_signature: Dict[Tuple[frozenset, frozenset], int] = {}
    for node_id, node in enumerate(nodes):
        signature = (frozenset(node.labels), _tails(nodes, node_id, k, memo))
        anchor = by_signature.setdefault(signature, node_id)
        if anchor != node_id:
            union.union(anchor, node_id)
    return union


def _class_edges(nodes: List[_PtaNode], union: _UnionFind) -> Dict[
        int, Dict[Tuple[str, Optional[str]], Dict[int, List[Observation]]]]:
    """source class -> (event, channel) -> target class -> observations."""
    edges: Dict[int, Dict[Tuple[str, Optional[str]],
                          Dict[int, List[Observation]]]] = {}
    for node_id, node in enumerate(nodes):
        source = union.find(node_id)
        for key, child in node.children.items():
            target = union.find(child)
            group = edges.setdefault(source, {}).setdefault(key[:2], {})
            group.setdefault(target, []).extend(node.observations[key])
    return edges


def _determinize(nodes: List[_PtaNode], union: _UnionFind) -> Dict[
        int, Dict[Tuple[str, Optional[str]], Dict[int, List[Observation]]]]:
    """Fold targets that guard synthesis cannot separate, until stable."""
    while True:
        edges = _class_edges(nodes, union)
        changed = False
        for source, groups in edges.items():
            for key, targets in groups.items():
                if len(targets) < 2:
                    continue
                ordered = sorted(targets)
                branches = [targets[target] for target in ordered]
                if _synthesize_guards(branches) is None:
                    anchor = ordered[0]
                    for other in ordered[1:]:
                        union.union(anchor, other)
                    changed = True
            if changed:
                break
        if not changed:
            return edges


# ---------------------------------------------------------------------------
# Machine emission
# ---------------------------------------------------------------------------

@dataclass
class MinedMachine:
    """A learned machine plus the evidence behind every transition."""

    machine: str                 # source machine name ("sip", "rtp")
    efsm: Efsm
    sequences: int
    steps: int
    #: mined state -> dominant spec-state label observed there.
    state_labels: Dict[str, str]
    #: (source, event, channel, target) -> training observations.
    observations: Dict[Tuple[str, str, Optional[str], str],
                       List[Observation]]
    #: (source, event, channel, target) -> synthesized guard, when one was
    #: needed to keep the group deterministic.
    guards: Dict[Tuple[str, str, Optional[str], str], GuardSpec]

    @property
    def supports(self) -> Dict[Tuple[str, str, Optional[str], str], int]:
        """Training-evidence count per transition (the anomaly model input)."""
        return {key: len(group) for key, group in self.observations.items()}

    def summary(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "name": self.efsm.name,
            "states": len(self.efsm.states),
            "transitions": len(self.efsm.transitions),
            "guarded_transitions": len(self.guards),
            "sequences": self.sequences,
            "steps": self.steps,
            "final_states": sorted(self.efsm.final_states),
        }


def mine_machine(sequences: List[CallSequence], machine: str,
                 k: int = DEFAULT_K) -> MinedMachine:
    """Learn one machine from its training sequences (PTA → k-tails →
    determinize → guard synthesis → :class:`Efsm`)."""
    if not sequences:
        raise ValueError(f"no training sequences for machine {machine!r}")
    nodes = _build_pta(sequences)
    union = _merge_k_tails(nodes, k)
    edges = _determinize(nodes, union)

    # Aggregate class annotations (spec labels, end counts).
    class_labels: Dict[int, Counter] = {}
    class_ends: Dict[int, int] = {}
    for node_id, node in enumerate(nodes):
        root = union.find(node_id)
        class_labels.setdefault(root, Counter()).update(node.labels)
        class_ends[root] = class_ends.get(root, 0) + node.ends

    # Name states after their dominant observed spec state — mined DOT
    # output and specdiff messages then read in the spec's vocabulary.
    order = [union.find(0)]
    seen = {order[0]}
    frontier = [order[0]]
    while frontier:
        current = frontier.pop(0)
        for key in sorted(edges.get(current, {}),
                          key=lambda item: (item[0], item[1] or "")):
            for target in sorted(edges[current][key]):
                if target not in seen:
                    seen.add(target)
                    order.append(target)
                    frontier.append(target)

    names: Dict[int, str] = {}
    used: Dict[str, int] = {}
    for cls in order:
        labels = class_labels.get(cls)
        base = labels.most_common(1)[0][0] if labels else "q"
        count = used.get(base, 0)
        used[base] = count + 1
        names[cls] = base if count == 0 else f"{base}#{count + 1}"

    initial = names[union.find(0)]
    efsm = Efsm(f"mined-{machine}", initial)
    for cls in order:
        efsm.add_state(names[cls], final=class_ends.get(cls, 0) > 0)
    channels = {key[1] for groups in edges.values() for key in groups
                if key[1] is not None and key[1] != TIMER_CHANNEL}
    if channels:
        efsm.declare_channel(*sorted(channels))

    observations: Dict[Tuple[str, str, Optional[str], str],
                       List[Observation]] = {}
    guards: Dict[Tuple[str, str, Optional[str], str], GuardSpec] = {}
    steps = 0
    for cls in order:
        for key, targets in sorted(
                edges.get(cls, {}).items(),
                key=lambda item: (item[0][0], item[0][1] or "")):
            event_name, channel = key
            ordered = sorted(targets)
            specs: Optional[List[GuardSpec]] = None
            if len(ordered) > 1:
                specs = _synthesize_guards(
                    [targets[target] for target in ordered])
                if specs is None:   # _determinize guarantees this cannot be
                    raise RuntimeError(
                        f"mined-{machine}: undeterminized group "
                        f"{names[cls]}/{event_name}")
            for index, target in enumerate(ordered):
                group = targets[target]
                steps += len(group)
                transition_key = (names[cls], event_name, channel,
                                  names[target])
                observations.setdefault(transition_key, []).extend(group)
                spec = specs[index] if specs else None
                predicate = spec.build() if spec else None
                label = f"{event_name}"
                if spec is not None:
                    label = f"{event_name} [{spec.describe()}]"
                    guards[transition_key] = spec
                efsm.add_transition(
                    names[cls], event_name, names[target],
                    predicate=predicate, channel=channel, label=label)
    efsm.validate()
    return MinedMachine(
        machine=machine, efsm=efsm, sequences=len(sequences), steps=steps,
        state_labels={names[cls]:
                      (class_labels[cls].most_common(1)[0][0]
                       if class_labels.get(cls) else names[cls])
                      for cls in order},
        observations=observations, guards=guards)


def mine(source: Union[TraceSource, MiningCorpus],
         machine: Optional[str] = None,
         k: int = DEFAULT_K,
         include_attacks: bool = False) -> Dict[str, MinedMachine]:
    """Mine every machine (or one) out of a trace source or corpus."""
    corpus = source if isinstance(source, MiningCorpus) else \
        extract_corpus(source, include_attacks=include_attacks)
    targets = [machine] if machine is not None else corpus.machines()
    mined: Dict[str, MinedMachine] = {}
    for name in targets:
        sequences = corpus.sequences.get(name, [])
        if not sequences:
            continue
        mined[name] = mine_machine(sequences, name, k=k)
    return mined


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

def replay_sequence(efsm: Efsm,
                    sequence: CallSequence) -> List[FiringResult]:
    """Deliver a training sequence to a fresh instance of a mined machine.

    Returns the firing results; a result with ``deviation`` set means the
    model rejected its own training data (which :func:`mine_machine`'s
    construction is expected to make impossible — the acceptance tests
    assert exactly that).
    """
    instance = EfsmInstance(efsm, clock_now=lambda: 0.0)
    results = []
    for step in sequence.steps:
        results.append(instance.deliver(Event(
            step.event, step.args, channel=step.channel, time=step.time)))
    return results
