"""FIFO synchronization channels between communicating EFSMs.

The paper: "The synchronization messages are transmitted through the
communication channels between protocol entities ... We assume that these
communication channels are reliable and function as FIFO queues.  The
synchronization events waiting in a FIFO queue have higher priority than the
data packet events." (Section 4.2)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .events import Event

__all__ = ["Channel", "channel_name", "parse_channel"]


def channel_name(sender: str, receiver: str) -> str:
    """Canonical channel id for the queue from ``sender`` to ``receiver``.

    Matches the paper's ``queue_12`` convention: the queue between protocol
    entity 1 and protocol entity 2 is named by its direction.
    """
    return f"{sender}->{receiver}"


def parse_channel(name: str) -> tuple:
    """Split a canonical channel id back into ``(sender, receiver)``.

    Returns ``(None, None)`` for non-directional channel names (the timer
    pseudo-channel, or machine-name shorthands used by ``ctx.emit``).
    """
    sender, arrow, receiver = name.partition("->")
    if not arrow or not sender or not receiver:
        return None, None
    return sender, receiver


class Channel:
    """A reliable FIFO queue carrying synchronization events one way."""

    def __init__(self, sender: str, receiver: str):
        self.sender = sender
        self.receiver = receiver
        self.name = channel_name(sender, receiver)
        self._queue: Deque[Event] = deque()
        self.enqueued_total = 0

    def put(self, event: Event) -> None:
        self._queue.append(event)
        self.enqueued_total += 1

    def get(self) -> Optional[Event]:
        return self._queue.popleft() if self._queue else None

    def peek(self) -> Optional[Event]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
