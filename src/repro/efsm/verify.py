"""Static verification (spec-lint) of EFSM definitions and their composition.

The paper's detection guarantee rests on the SIP and RTP EFSMs being correct
*specifications*: Section 4.2 derives attack patterns from reachability over
the transition structure, and the CSP-style ``c!δ`` / ``c?δ`` channel events
only compose safely if every send has a matching receive.  This module
analyzes machine definitions **without executing them** and reports findings
as :class:`~repro.efsm.diagnostics.Diagnostic` records.

Per-machine rules (:func:`verify_machine`):

- ``unreachable-state`` / ``unreachable-attack-state`` — no structural path
  from the initial state (an unreachable attack state is a pattern that can
  never match);
- ``trap-state`` — a reachable non-final state with no outgoing transitions;
- ``dead-state`` — a reachable non-final state from which no final state is
  reachable (the call record could only ever leave memory via the TTL GC);
- ``nondeterministic-overlap`` — same (state, event, channel) transitions
  whose guards are not mutually exclusive, generalizing
  :meth:`Efsm.check_determinism` with unguarded-pair detection and sampled
  predicate probing;
- ``event-coverage-gap`` — alphabet events a state has no transition for
  (informational: deviations *are* the anomaly signal, but the table is how
  one audits specification completeness);
- ``undeclared-variable`` / ``read-before-write`` / ``unused-variable`` —
  state-variable hygiene, mined from predicate/action sources;
- ``timer-unhandled`` / ``timer-never-fires`` / ``timer-never-started`` —
  timers started but never consumed or cancelled, and vice versa;
- ``undeclared-channel`` — sends/receives on channels the machine never
  declared (see :meth:`Efsm.declare_channel`).

Cross-machine rules (:func:`verify_system`):

- ``unknown-channel-endpoint`` — a channel naming a machine that is not part
  of the system;
- ``unmatched-send`` — an emitted ``c!δ`` no receiver ever consumes;
- ``unmatched-receive`` — a ``c?δ`` transition nothing ever sends;
- ``sync-deadlock`` / ``sync-unbounded`` — a bounded product-automaton pass
  over the interacting system that flags reachable configurations where a
  queued synchronization event can never be consumed (a wedged FIFO is a
  runtime deviation on a *legitimate* trace) or where a FIFO can grow past
  the exploration bound.

Predicate *probing* (calling guard callables against sampled configurations)
is the only execution performed; machine state is never advanced.
"""

from __future__ import annotations

import inspect
import re
from collections import deque
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .analysis import coreachable_states, reachable_states
from .channels import channel_name, parse_channel
from .diagnostics import Diagnostic, Severity
from .events import TIMER_CHANNEL, Event
from .machine import Efsm, EfsmInstance, Transition, TransitionContext

__all__ = ["verify_machine", "verify_system", "RULES"]

#: Rule id -> one-line summary (the authoritative catalog is
#: ``docs/SPECCHECK.md``).
RULES: Dict[str, str] = {
    "unreachable-state": "state has no structural path from the initial state",
    "unreachable-attack-state": "attack state can never be reached, so its "
                                "pattern can never match",
    "trap-state": "non-final state with no outgoing transitions",
    "dead-state": "non-final state from which no final state is reachable",
    "nondeterministic-overlap": "same (state, event) transitions with "
                                "non-exclusive guards",
    "event-coverage-gap": "state handles only part of the event alphabet",
    "undeclared-variable": "action writes a state variable that was never "
                           "declared",
    "read-before-write": "transition reads a variable that is never declared "
                         "nor written",
    "unused-variable": "declared variable no transition reads or writes",
    "timer-unhandled": "timer is started but its expiry event has no "
                       "transition and it is never cancelled",
    "timer-never-fires": "timer is started and cancelled but no transition "
                         "consumes its expiry",
    "timer-never-started": "timer-channel transition for a timer no action "
                           "ever starts",
    "undeclared-channel": "transition references a sync channel the machine "
                          "never declared",
    "unknown-channel-endpoint": "channel endpoint is not a machine of the "
                                "system",
    "unmatched-send": "emitted sync event has no consuming transition in the "
                      "receiver",
    "unmatched-receive": "sync receive that no machine in the system sends",
    "sync-deadlock": "reachable configuration wedges a queued sync event the "
                     "receiver can never consume",
    "sync-unbounded": "a sync FIFO can exceed the exploration bound",
    "analysis-incomplete": "part of the specification could not be analyzed "
                           "statically",
}

# ---------------------------------------------------------------------------
# Source mining: predicates/actions are plain callables, so variable, timer,
# and dynamic-emit usage is recovered from their (and their same-module
# helpers') source text.  Best-effort by design: anything unresolvable is
# surfaced as an `analysis-incomplete` finding instead of being guessed at.
# ---------------------------------------------------------------------------

_VAR_WRITE_RE = re.compile(
    r"\.v\[\s*['\"]([A-Za-z_]\w*)['\"]\s*\]\s*(?:[-+*/%&|^@]|//|\*\*)?=(?!=)")
_VAR_SUBSCRIPT_RE = re.compile(r"\.v\[\s*['\"]([A-Za-z_]\w*)['\"]\s*\]")
_VAR_GET_RE = re.compile(r"\.v\.get\(\s*['\"]([A-Za-z_]\w*)['\"]")
_VAR_DYNAMIC_RE = re.compile(r"\.v\[\s*([A-Za-z_]\w*)\s*\]")
_TIMER_START_RE = re.compile(
    r"\.start_timer\(\s*(?:['\"]([A-Za-z_]\w*)['\"]|([A-Za-z_]\w*))")
_TIMER_CANCEL_RE = re.compile(
    r"\.cancel_timer\(\s*(?:['\"]([A-Za-z_]\w*)['\"]|([A-Za-z_]\w*))")
_EMIT_RE = re.compile(
    r"\.emit\(\s*(?:['\"]([^'\"]+)['\"]|([A-Za-z_]\w*))\s*,"
    r"\s*(?:['\"]([A-Za-z_]\w*)['\"]|([A-Za-z_]\w*))")


def _closure_bindings(fn: Callable) -> Dict[str, Any]:
    bindings: Dict[str, Any] = {}
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure:
        for name, cell in zip(code.co_freevars, closure):
            try:
                bindings[name] = cell.cell_contents
            except ValueError:       # empty cell
                continue
    return bindings


def _resolve_identifier(fn: Callable, identifier: str) -> Any:
    """Best-effort lookup of a name as seen from inside ``fn``."""
    bindings = _closure_bindings(fn)
    if identifier in bindings:
        return bindings[identifier]
    return getattr(fn, "__globals__", {}).get(identifier)


def _expand_callables(root: Callable,
                      limit: int = 64) -> List[Tuple[Callable, str]]:
    """``root`` plus same-module helper functions it (transitively) calls.

    Guard and action callables routinely delegate to module-level helpers
    (``_add_participants``-style); the variable/timer rules must see those
    bodies to avoid false positives.
    """
    module = getattr(root, "__module__", None)
    expanded: List[Tuple[Callable, str]] = []
    seen: Set[int] = set()
    frontier = [root]
    while frontier and len(expanded) < limit:
        fn = frontier.pop()
        code = getattr(fn, "__code__", None)
        if code is None or id(code) in seen:
            continue
        seen.add(id(code))
        try:
            source = inspect.getsource(fn)
        except (OSError, TypeError):
            source = ""
        expanded.append((fn, source))
        referenced = set(code.co_names) | set(code.co_freevars)
        for name in referenced:
            value = _resolve_identifier(fn, name)
            if (inspect.isfunction(value)
                    and getattr(value, "__module__", None) == module
                    and id(getattr(value, "__code__", None)) not in seen):
                frontier.append(value)
    return expanded


class _TransitionUsage:
    """What one transition's callables read, write, start, and emit."""

    def __init__(self, transition: Transition):
        self.transition = transition
        self.reads_subscript: Set[str] = set()
        self.reads_get: Set[str] = set()
        self.writes: Set[str] = set()
        self.timer_starts: Set[str] = set()
        self.timer_cancels: Set[str] = set()
        #: Dynamically emitted (channel, event) pairs via ``ctx.emit``.
        self.emits: Set[Tuple[str, str]] = set()
        self.unresolved: List[str] = []

    def _resolve(self, fn: Callable, literal: Optional[str],
                 identifier: Optional[str], what: str) -> Optional[str]:
        if literal:
            return literal
        if identifier:
            value = _resolve_identifier(fn, identifier)
            if isinstance(value, str):
                return value
            self.unresolved.append(f"{what} name {identifier!r}")
        return None

    def scan(self, fn: Optional[Callable]) -> None:
        if fn is None:
            return
        for func, source in _expand_callables(fn):
            if not source:
                self.unresolved.append(
                    f"source unavailable for {getattr(func, '__name__', '?')}")
                continue
            write_spans = set()
            for match in _VAR_WRITE_RE.finditer(source):
                self.writes.add(match.group(1))
                write_spans.add(match.start())
            for match in _VAR_SUBSCRIPT_RE.finditer(source):
                if match.start() not in write_spans:
                    self.reads_subscript.add(match.group(1))
            for match in _VAR_GET_RE.finditer(source):
                self.reads_get.add(match.group(1))
            for match in _VAR_DYNAMIC_RE.finditer(source):
                self.unresolved.append(
                    f"dynamic variable subscript {match.group(1)!r}")
            for match in _TIMER_START_RE.finditer(source):
                name = self._resolve(func, match.group(1), match.group(2),
                                     "timer")
                if name:
                    self.timer_starts.add(name)
            for match in _TIMER_CANCEL_RE.finditer(source):
                name = self._resolve(func, match.group(1), match.group(2),
                                     "timer")
                if name:
                    self.timer_cancels.add(name)
            for match in _EMIT_RE.finditer(source):
                channel = self._resolve(func, match.group(1), match.group(2),
                                        "emit channel")
                event = self._resolve(func, match.group(3), match.group(4),
                                      "emit event")
                if channel and event:
                    self.emits.add((channel, event))


def _transition_usages(machine: Efsm) -> List[_TransitionUsage]:
    usages = []
    for transition in machine.transitions:
        usage = _TransitionUsage(transition)
        usage.scan(transition.predicate)
        usage.scan(transition.action)
        for output in transition.outputs:
            usage.scan(output.args_from)
        usages.append(usage)
    return usages


# ---------------------------------------------------------------------------
# Per-machine rules
# ---------------------------------------------------------------------------

def _check_reachability(machine: Efsm,
                        reachable: Set[str]) -> List[Diagnostic]:
    diagnostics = []
    for state in sorted(set(machine.states) - reachable):
        if state in machine.attack_states:
            diagnostics.append(Diagnostic(
                "unreachable-attack-state", Severity.ERROR,
                f"attack state {state!r} has no structural path from "
                f"{machine.initial_state!r}; its attack pattern can never "
                f"match",
                machine=machine.name, state=state,
                hint="add the transitions that constitute the attack "
                     "pattern, or delete the state"))
        else:
            diagnostics.append(Diagnostic(
                "unreachable-state", Severity.ERROR,
                f"state {state!r} is unreachable from "
                f"{machine.initial_state!r}",
                machine=machine.name, state=state,
                hint="connect it to the transition structure or remove it"))
    return diagnostics


def _check_sinks(machine: Efsm, reachable: Set[str]) -> List[Diagnostic]:
    diagnostics = []
    outgoing: Dict[str, int] = {}
    for transition in machine.transitions:
        outgoing[transition.source] = outgoing.get(transition.source, 0) + 1
    traps = set()
    for state in sorted(reachable):
        if state in machine.final_states or state in machine.attack_states:
            continue
        if not outgoing.get(state):
            traps.add(state)
            diagnostics.append(Diagnostic(
                "trap-state", Severity.ERROR,
                f"state {state!r} is reachable, not final, and has no "
                f"outgoing transitions: every later event of the call "
                f"becomes a deviation and the record never completes",
                machine=machine.name, state=state,
                hint="mark it final or give it outgoing transitions"))
    if machine.final_states:
        coreachable = coreachable_states(machine)
        for state in sorted(reachable - coreachable - traps):
            if state in machine.final_states or state in machine.attack_states:
                continue
            diagnostics.append(Diagnostic(
                "dead-state", Severity.WARNING,
                f"no final state is reachable from {state!r}; a call wedged "
                f"there only leaves memory via the idle TTL",
                machine=machine.name, state=state,
                hint="add a path to a final state or mark an absorbing "
                     "state final"))
    return diagnostics


def _probe_events(event_name: str, channel: Optional[str],
                  samples: Sequence[Mapping[str, Any]]) -> List[Event]:
    return [Event(event_name, dict(args), channel=channel)
            for args in samples]


def _check_determinism(machine: Efsm,
                       samples: Sequence[Mapping[str, Any]]
                       ) -> List[Diagnostic]:
    diagnostics = []
    groups: Dict[Tuple[str, str, Optional[str]], List[Transition]] = {}
    for transition in machine.transitions:
        key = (transition.source, transition.event_name, transition.channel)
        groups.setdefault(key, []).append(transition)
    for (source, event_name, channel), group in sorted(
            groups.items(), key=lambda item: (item[0][0], item[0][1],
                                              item[0][2] or "")):
        if len(group) < 2:
            continue
        describes = [t.describe() for t in group]
        unguarded = [t for t in group if t.predicate is None]
        if len(unguarded) >= 2:
            diagnostics.append(Diagnostic(
                "nondeterministic-overlap", Severity.ERROR,
                f"{len(unguarded)} unguarded transitions from {source!r} on "
                f"{event_name!r} are always simultaneously enabled",
                machine=machine.name, state=source, event=event_name,
                transition=describes[0], data={"transitions": describes},
                hint="give all but one of them mutually exclusive "
                     "predicates"))
            continue
        witness = _probe_overlap(machine, source, group,
                                 _probe_events(event_name, channel, samples))
        if witness is not None:
            enabled, event = witness
            diagnostics.append(Diagnostic(
                "nondeterministic-overlap", Severity.ERROR,
                f"sampled configuration {dict(event.args)!r} enables "
                f"{len(enabled)} transitions from {source!r} on "
                f"{event_name!r}: {[t.describe() for t in enabled]}",
                machine=machine.name, state=source, event=event_name,
                transition=enabled[0].describe(),
                data={"transitions": [t.describe() for t in enabled],
                      "witness_args": dict(event.args)},
                hint="make the predicates mutually disjoint (P_i ∧ P_j = ∅)"))
        elif unguarded:
            diagnostics.append(Diagnostic(
                "nondeterministic-overlap", Severity.WARNING,
                f"unguarded transition {unguarded[0].describe()!r} overlaps "
                f"{len(group) - 1} guarded alternative(s) from {source!r} on "
                f"{event_name!r} unless every guard excludes it",
                machine=machine.name, state=source, event=event_name,
                transition=unguarded[0].describe(),
                data={"transitions": describes},
                hint="guard it with the negation of the other predicates"))
    return diagnostics


def _probe_overlap(machine: Efsm, source: str, group: Sequence[Transition],
                   events: Sequence[Event]
                   ) -> Optional[Tuple[List[Transition], Event]]:
    """Probe guards against sampled configurations; return a witness."""
    for event in events:
        probe = EfsmInstance(machine)
        probe.state = source
        ctx = TransitionContext(probe, event)
        enabled = []
        for transition in group:
            try:
                if transition.enabled(ctx):
                    enabled.append(transition)
            except Exception:
                continue          # guard not probe-able on this sample
        if len(enabled) > 1:
            return enabled, event
    return None


def _check_event_coverage(machine: Efsm,
                          reachable: Set[str]) -> List[Diagnostic]:
    diagnostics = []
    handled: Dict[str, Set[str]] = {state: set() for state in machine.states}
    for transition in machine.transitions:
        handled[transition.source].add(transition.event_name)
    for state in sorted(reachable):
        if state in machine.attack_states:
            continue
        missing = sorted(machine.alphabet - handled[state])
        if missing:
            diagnostics.append(Diagnostic(
                "event-coverage-gap", Severity.INFO,
                f"state {state!r} has no transition for "
                f"{len(missing)}/{len(machine.alphabet)} alphabet events: "
                f"{missing}",
                machine=machine.name, state=state,
                data={"missing": missing},
                hint="intentional gaps are how deviations are detected; "
                     "review that each is intentional"))
    return diagnostics


def _check_variables(machine: Efsm,
                     usages: Sequence[_TransitionUsage]) -> List[Diagnostic]:
    diagnostics = []
    declared = set(machine.variables) | set(machine.global_variables)
    writes: Dict[str, List[str]] = {}
    reads_sub: Dict[str, List[str]] = {}
    reads_get: Dict[str, List[str]] = {}
    for usage in usages:
        label = usage.transition.describe()
        for name in usage.writes:
            writes.setdefault(name, []).append(label)
        for name in usage.reads_subscript:
            reads_sub.setdefault(name, []).append(label)
        for name in usage.reads_get:
            reads_get.setdefault(name, []).append(label)
    for name in sorted(set(writes) - declared):
        diagnostics.append(Diagnostic(
            "undeclared-variable", Severity.ERROR,
            f"transition(s) {sorted(set(writes[name]))} write state variable "
            f"{name!r} which is never declared",
            machine=machine.name, transition=writes[name][0],
            data={"variable": name},
            hint="declare it (with its default/domain) via declare() or "
                 "declare_global()"))
    for name in sorted((set(reads_sub) - declared) - set(writes)):
        diagnostics.append(Diagnostic(
            "read-before-write", Severity.ERROR,
            f"transition(s) {sorted(set(reads_sub[name]))} read "
            f"v[{name!r}] but the variable is never declared nor written; "
            f"the read raises KeyError at runtime",
            machine=machine.name, transition=reads_sub[name][0],
            data={"variable": name},
            hint="declare the variable or fix the name"))
    for name in sorted((set(reads_get) - declared)
                       - set(writes) - set(reads_sub)):
        diagnostics.append(Diagnostic(
            "read-before-write", Severity.WARNING,
            f"transition(s) {sorted(set(reads_get[name]))} read "
            f"v.get({name!r}) but the variable is never declared nor "
            f"written; the default always applies (likely a typo)",
            machine=machine.name, transition=reads_get[name][0],
            data={"variable": name},
            hint="declare the variable or fix the name"))
    referenced = set(writes) | set(reads_sub) | set(reads_get)
    for name in sorted(set(machine.variables) - referenced):
        diagnostics.append(Diagnostic(
            "unused-variable", Severity.INFO,
            f"declared local variable {name!r} is never read or written by "
            f"any transition",
            machine=machine.name, data={"variable": name},
            hint="drop the declaration if the variable is vestigial"))
    return diagnostics


def _check_timers(machine: Efsm,
                  usages: Sequence[_TransitionUsage]) -> List[Diagnostic]:
    diagnostics = []
    starts: Dict[str, str] = {}
    cancels: Set[str] = set()
    for usage in usages:
        for name in usage.timer_starts:
            starts.setdefault(name, usage.transition.describe())
        cancels.update(usage.timer_cancels)
    consumed = {t.event_name for t in machine.transitions
                if t.channel == TIMER_CHANNEL}
    for name in sorted(set(starts) - consumed):
        if name in cancels:
            diagnostics.append(Diagnostic(
                "timer-never-fires", Severity.WARNING,
                f"timer {name!r} is started and cancelled but no "
                f"timer-channel transition consumes its expiry",
                machine=machine.name, transition=starts[name],
                event=name, channel=TIMER_CHANNEL,
                hint="add a transition on the timer channel, or remove the "
                     "timer"))
        else:
            diagnostics.append(Diagnostic(
                "timer-unhandled", Severity.ERROR,
                f"timer {name!r} is started (by {starts[name]!r}) but never "
                f"cancelled and no transition consumes its expiry: every "
                f"expiry becomes a spurious deviation",
                machine=machine.name, transition=starts[name],
                event=name, channel=TIMER_CHANNEL,
                hint="add a transition with channel=TIMER_CHANNEL for it, "
                     "or cancel it on every path"))
    started = set(starts)
    for name in sorted(consumed - started):
        diagnostics.append(Diagnostic(
            "timer-never-started", Severity.WARNING,
            f"transition(s) consume timer event {name!r} but no action ever "
            f"starts that timer",
            machine=machine.name, event=name, channel=TIMER_CHANNEL,
            hint="start the timer in some action, or drop the transitions"))
    return diagnostics


def _check_channels(machine: Efsm,
                    usages: Sequence[_TransitionUsage]) -> List[Diagnostic]:
    diagnostics = []
    declared = set(machine.channels) | {TIMER_CHANNEL}
    flagged: Set[Tuple[str, str]] = set()

    def flag(channel: str, transition: Transition, direction: str) -> None:
        key = (channel, transition.describe())
        if key in flagged:
            return
        flagged.add(key)
        diagnostics.append(Diagnostic(
            "undeclared-channel", Severity.ERROR,
            f"transition {transition.describe()!r} {direction} on channel "
            f"{channel!r} which the machine never declared",
            machine=machine.name, state=transition.source,
            transition=transition.describe(), channel=channel,
            hint="declare_channel() it so topology checks can see the "
                 "machine's sync interface"))

    for transition in machine.transitions:
        if (transition.channel is not None
                and transition.channel not in declared):
            flag(transition.channel, transition, "receives")
        for output in transition.outputs:
            if output.channel not in declared:
                flag(output.channel, transition, "sends")
    for usage in usages:
        for channel, _event in sorted(usage.emits):
            if channel not in declared:
                flag(channel, usage.transition, "dynamically emits")
    return diagnostics


def _check_incomplete(machine: Efsm,
                      usages: Sequence[_TransitionUsage]) -> List[Diagnostic]:
    notes = sorted({note for usage in usages for note in usage.unresolved})
    if not notes:
        return []
    return [Diagnostic(
        "analysis-incomplete", Severity.INFO,
        f"{len(notes)} construct(s) could not be statically resolved: "
        f"{notes[:5]}",
        machine=machine.name, data={"notes": notes},
        hint="variable/timer/channel rules may under-report for this "
             "machine")]


def verify_machine(machine: Efsm,
                   samples: Optional[Sequence[Mapping[str, Any]]] = None
                   ) -> List[Diagnostic]:
    """Run every per-machine spec-lint rule; returns structured findings.

    ``samples`` are event-argument vectors used to probe guard disjointness
    (the empty vector is always probed).  Nothing about the machine is
    mutated and no transition actions execute.
    """
    probe_samples: List[Mapping[str, Any]] = [{}]
    if samples:
        probe_samples.extend(samples)
    usages = _transition_usages(machine)
    reachable = reachable_states(machine)
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_reachability(machine, reachable))
    diagnostics.extend(_check_sinks(machine, reachable))
    diagnostics.extend(_check_determinism(machine, probe_samples))
    diagnostics.extend(_check_event_coverage(machine, reachable))
    diagnostics.extend(_check_variables(machine, usages))
    diagnostics.extend(_check_timers(machine, usages))
    diagnostics.extend(_check_channels(machine, usages))
    diagnostics.extend(_check_incomplete(machine, usages))
    return diagnostics


# ---------------------------------------------------------------------------
# Cross-machine rules
# ---------------------------------------------------------------------------

def _canonical_sends(machine: Efsm, usages: Sequence[_TransitionUsage],
                     names: Set[str]
                     ) -> List[Tuple[str, str, Transition, Optional[str]]]:
    """All (channel, event, transition, endpoint_error) sends of a machine.

    Channel shorthands (a bare machine name, as accepted by
    ``EfsmSystem._route_output`` and ``ctx.emit``) are canonicalized to the
    directional ``sender->receiver`` form.
    """
    sends = []
    raw: List[Tuple[str, str, Transition]] = []
    for usage in usages:
        for channel, event in sorted(usage.emits):
            raw.append((channel, event, usage.transition))
    for transition in machine.transitions:
        for output in transition.outputs:
            raw.append((output.channel, output.event_name, transition))
    for channel, event, transition in raw:
        if channel == TIMER_CHANNEL:
            continue
        sender, receiver = parse_channel(channel)
        if sender is None:
            # Shorthand: the channel names the receiving machine.
            receiver = channel
            channel = channel_name(machine.name, receiver)
        error = receiver if receiver not in names else None
        sends.append((channel, event, transition, error))
    return sends


def _system_topology(machines: Sequence[Efsm],
                     usages_by_machine: Mapping[str, Sequence[_TransitionUsage]]
                     ) -> List[Diagnostic]:
    diagnostics = []
    names = {machine.name for machine in machines}
    sends: Dict[Tuple[str, str], List[Tuple[Efsm, Transition]]] = {}
    for machine in machines:
        for channel, event, transition, endpoint_error in _canonical_sends(
                machine, usages_by_machine[machine.name], names):
            if endpoint_error is not None:
                diagnostics.append(Diagnostic(
                    "unknown-channel-endpoint", Severity.ERROR,
                    f"{machine.name!r} sends {event!r} on {channel!r} but "
                    f"{endpoint_error!r} is not a machine of this system",
                    machine=machine.name, channel=channel, event=event,
                    transition=transition.describe(),
                    hint="fix the channel id or add the missing machine"))
                continue
            sends.setdefault((channel, event), []).append(
                (machine, transition))
    receives: Dict[Tuple[str, str], List[Tuple[Efsm, Transition]]] = {}
    for machine in machines:
        for transition in machine.transitions:
            channel = transition.channel
            if channel is None or channel == TIMER_CHANNEL:
                continue
            receives.setdefault((channel, transition.event_name), []).append(
                (machine, transition))
    for (channel, event), senders in sorted(sends.items()):
        if (channel, event) not in receives:
            machine, transition = senders[0]
            _sender, receiver = parse_channel(channel)
            diagnostics.append(Diagnostic(
                "unmatched-send", Severity.ERROR,
                f"{machine.name!r} sends {event!r} on {channel!r} but "
                f"{receiver!r} has no transition consuming it in any state: "
                f"the δ would sit in the FIFO forever",
                machine=machine.name, channel=channel, event=event,
                transition=transition.describe(),
                data={"witness": _send_witness(machine, transition,
                                               channel, event)},
                hint=f"add a c?{event} transition to {receiver!r} or drop "
                     f"the output"))
    for (channel, event), receivers in sorted(receives.items()):
        sender, _receiver = parse_channel(channel)
        if sender is not None and sender not in names:
            continue              # channel from outside this system
        if (channel, event) not in sends:
            machine, transition = receivers[0]
            diagnostics.append(Diagnostic(
                "unmatched-receive", Severity.WARNING,
                f"{machine.name!r} waits for {event!r} on {channel!r} but "
                f"nothing in the system ever sends it",
                machine=machine.name, channel=channel, event=event,
                transition=transition.describe(),
                hint="dead receive arm: remove it or add the matching send"))
    return diagnostics


def _witness_to_state(machine: Efsm, target_state: str) -> Optional[List[str]]:
    """Shortest single-machine event path from the initial state to
    ``target_state`` (transition labels), or None if unreachable alone."""
    if machine.initial_state == target_state:
        return []
    moves: Dict[str, List[Transition]] = {}
    for transition in machine.transitions:
        moves.setdefault(transition.source, []).append(transition)
    visited = {machine.initial_state}
    frontier: deque = deque([(machine.initial_state, [])])
    while frontier:
        state, path = frontier.popleft()
        for transition in moves.get(state, ()):
            if transition.target in visited:
                continue
            step = f"{machine.name}: {transition.describe()}"
            if transition.target == target_state:
                return path + [step]
            visited.add(transition.target)
            frontier.append((transition.target, path + [step]))
    return None


def _send_witness(machine: Efsm, transition: Transition, channel: str,
                  event: str) -> List[str]:
    """Witness trace for an unmatched send: the shortest path of the
    sending machine to the offending transition, then the send itself."""
    prefix = _witness_to_state(machine, transition.source)
    if prefix is None:
        prefix = [f"<{transition.source!r} unreachable by free moves alone>"]
    return prefix + [f"{machine.name}: {transition.describe()}",
                     f"{channel} ! {event} (never consumed)"]


class _ProductExplorer:
    """Bounded reachability over the product of the interacting machines.

    Models the runtime's semantics: data (and timer) events are *free* moves
    whose guards are over-approximated as satisfiable; synchronization
    events queue on their FIFO channel and are drained to empty — with
    priority over data events — after every move.  A queued head event the
    receiver cannot consume is exactly the runtime's "deviation on a sync
    event" failure mode, reported as ``sync-deadlock``.
    """

    def __init__(self, machines: Sequence[Efsm], queue_bound: int,
                 max_configs: int):
        self.machines = list(machines)
        self.names = [machine.name for machine in self.machines]
        self.index = {name: i for i, name in enumerate(self.names)}
        self.queue_bound = queue_bound
        self.max_configs = max_configs
        #: Consume steps allowed in one drain cascade.  A cascade that emits
        #: one sync per consume keeps the queue depth constant forever (a
        #: ping-pong livelock the queue bound never catches), so cap the
        #: steps as well.
        self.drain_cap = 64
        self.diagnostics: List[Diagnostic] = []
        self._reported: Set[Tuple] = set()
        self.truncated = False
        # (machine index, state) -> free-move transitions.
        self.free_moves: Dict[Tuple[int, str], List[Transition]] = {}
        # (machine index, state, channel, event) -> receiving transitions.
        self.receivers: Dict[Tuple[int, str, str, str], List[Transition]] = {}
        for i, machine in enumerate(self.machines):
            for transition in machine.transitions:
                if transition.channel is None or \
                        transition.channel == TIMER_CHANNEL:
                    self.free_moves.setdefault(
                        (i, transition.source), []).append(transition)
                else:
                    key = (i, transition.source, transition.channel,
                           transition.event_name)
                    self.receivers.setdefault(key, []).append(transition)

    def _outputs(self, machine_index: int,
                 transition: Transition) -> List[Tuple[str, str]]:
        outputs = []
        for output in transition.outputs:
            channel = output.channel
            if parse_channel(channel)[0] is None:
                channel = channel_name(self.names[machine_index], channel)
            outputs.append((channel, output.event_name))
        return outputs

    def _report_stuck(self, receiver_index: int, state: str, channel: str,
                      event: str, trigger: str,
                      path: Tuple[str, ...]) -> None:
        key = (receiver_index, state, channel, event)
        if key in self._reported:
            return
        self._reported.add(key)
        name = self.names[receiver_index]
        witness = list(path) + [
            f"{channel} ? {event} (no consumer: {name} is in {state!r})"]
        self.diagnostics.append(Diagnostic(
            "sync-deadlock", Severity.ERROR,
            f"reachable configuration wedges the FIFO: {name!r} is in "
            f"{state!r} when {event!r} arrives on {channel!r} (triggered by "
            f"{trigger!r}) and no transition consumes it",
            machine=name, state=state, channel=channel, event=event,
            data={"trigger": trigger, "witness": witness},
            hint=f"handle {event!r} in state {state!r} (even a self-loop "
                 f"documents the race) or stop sending it on this path"))

    def _drain(self, states: Tuple[str, ...],
               queues: Mapping[str, Tuple[str, ...]],
               trigger: str, path: Tuple[str, ...] = (),
               depth: int = 0) -> Dict[Tuple[str, ...], Tuple[str, ...]]:
        """Quiescent state vectors reachable by consuming queued syncs.

        Returns vector -> the event path that reached it (the first path
        found per vector; with the BFS in :meth:`explore` feeding the
        prefixes, that is a shortest witness up to drain ordering).
        """
        live = {channel: queue for channel, queue in queues.items() if queue}
        if not live:
            return {states: path}
        if depth > self.drain_cap:
            self._report_livelock(sorted(live), trigger, path)
            return {}
        results: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
        for channel in sorted(live):
            queue = live[channel]
            event = queue[0]
            receiver_name = parse_channel(channel)[1]
            receiver_index = self.index.get(receiver_name)
            if receiver_index is None:
                continue          # reported by the topology pass
            matches = self.receivers.get(
                (receiver_index, states[receiver_index], channel, event), [])
            if not matches:
                self._report_stuck(receiver_index, states[receiver_index],
                                   channel, event, trigger, path)
                continue
            for transition in matches:
                new_states = list(states)
                new_states[receiver_index] = transition.target
                new_queues = dict(live)
                new_queues[channel] = queue[1:]
                step = (f"{self.names[receiver_index]}: "
                        f"{channel} ? {event}")
                overflow = False
                for out_channel, out_event in self._outputs(receiver_index,
                                                            transition):
                    extended = new_queues.get(out_channel, ()) + (out_event,)
                    if len(extended) > self.queue_bound:
                        self._report_overflow(out_channel, trigger,
                                              path + (step,))
                        overflow = True
                        break
                    new_queues[out_channel] = extended
                if overflow:
                    continue
                for vector, sub_path in self._drain(
                        tuple(new_states), new_queues, trigger,
                        path + (step,), depth + 1).items():
                    results.setdefault(vector, sub_path)
        return results

    def _report_livelock(self, channels: Sequence[str], trigger: str,
                         path: Tuple[str, ...]) -> None:
        key = ("livelock", tuple(channels))
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(Diagnostic(
            "sync-unbounded", Severity.WARNING,
            f"sync cascade on channel(s) {list(channels)} did not quiesce "
            f"within {self.drain_cap} consume steps (triggered by "
            f"{trigger!r}): machines may exchange sync events forever",
            channel=channels[0],
            data={"trigger": trigger, "witness": list(path)},
            hint="break the send/receive cycle so every cascade terminates"))

    def _report_overflow(self, channel: str, trigger: str,
                         path: Tuple[str, ...]) -> None:
        key = ("overflow", channel)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(Diagnostic(
            "sync-unbounded", Severity.WARNING,
            f"FIFO {channel!r} exceeded the exploration bound "
            f"({self.queue_bound}) while draining (triggered by "
            f"{trigger!r}): a send cycle may grow the queue without bound",
            channel=channel,
            data={"trigger": trigger, "witness": list(path)},
            hint="break the sync cycle or raise the bound if intentional"))

    def explore(self) -> None:
        initial = tuple(machine.initial_state for machine in self.machines)
        visited: Set[Tuple[str, ...]] = {initial}
        # Shortest known event path to each visited configuration: the BFS
        # discovery order makes the first recorded path minimal in free
        # moves, which keeps sync-deadlock witnesses short and stable.
        paths: Dict[Tuple[str, ...], Tuple[str, ...]] = {initial: ()}
        frontier = deque([initial])
        while frontier:
            if len(visited) > self.max_configs:
                self.truncated = True
                break
            states = frontier.popleft()
            base = paths[states]
            for i in range(len(self.machines)):
                for transition in self.free_moves.get((i, states[i]), ()):
                    moved = list(states)
                    moved[i] = transition.target
                    queues: Dict[str, Tuple[str, ...]] = {}
                    for channel, event in self._outputs(i, transition):
                        queues[channel] = queues.get(channel, ()) + (event,)
                    step = f"{self.names[i]}: {transition.describe()}"
                    for result, sub_path in self._drain(
                            tuple(moved), queues, transition.describe(),
                            base + (step,)).items():
                        if result not in visited:
                            visited.add(result)
                            paths[result] = sub_path
                            frontier.append(result)
        if self.truncated:
            self.diagnostics.append(Diagnostic(
                "analysis-incomplete", Severity.INFO,
                f"product exploration truncated after {self.max_configs} "
                f"configurations; sync-deadlock coverage is partial",
                hint="raise max_configs for exhaustive coverage"))


def verify_system(machines: Iterable[Efsm],
                  samples: Optional[Sequence[Mapping[str, Any]]] = None,
                  queue_bound: int = 4,
                  max_configs: int = 20000,
                  per_machine: bool = True) -> List[Diagnostic]:
    """Verify an interacting system of machines (plus each machine alone).

    Runs the cross-machine channel-topology rules and the bounded
    product-automaton pass over sync channels; with ``per_machine`` (the
    default) every :func:`verify_machine` rule runs first, so one call
    yields the complete report for the system.
    """
    machine_list = list(machines)
    diagnostics: List[Diagnostic] = []
    usages_by_machine = {
        machine.name: _transition_usages(machine) for machine in machine_list}
    if per_machine:
        for machine in machine_list:
            diagnostics.extend(verify_machine(machine, samples=samples))
    diagnostics.extend(_system_topology(machine_list, usages_by_machine))
    explorer = _ProductExplorer(machine_list, queue_bound=queue_bound,
                                max_configs=max_configs)
    explorer.explore()
    diagnostics.extend(explorer.diagnostics)
    return diagnostics
