"""Extended finite state machine: definition and execution.

Implements Definition 1 of the paper: an EFSM ``M = (Σ, S, v, D, T)`` whose
transitions are tuples ``<s_t, event, P_t, A_t, q_t>``.  A predicate ``P_t``
inspects the event's input vector ``x`` and the current state-variable
vector ``v``; an action ``A_t`` updates ``v`` (and may start timers or emit
output events ``c!event(x)`` onto synchronization channels).

Machines are *data*: an :class:`Efsm` is built declaratively (states,
variables with domains, transitions) and executed by :class:`EfsmInstance`,
so the vids protocol machines read like the paper's figures.  States or
transitions can be annotated as **attack** — reaching one is an attack-
scenario match — and an event with *no* enabled transition is recorded as a
**deviation** from the specification (the anomaly signal).
"""

from __future__ import annotations

import copy
import io
import types
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from .errors import DefinitionError, NondeterminismError
from .events import TIMER_CHANNEL, Event

__all__ = [
    "Variables",
    "TransitionContext",
    "Transition",
    "Output",
    "Efsm",
    "EfsmInstance",
    "FiringResult",
    "allow_impure_guard",
    "probed_dispatch",
]

Predicate = Callable[["TransitionContext"], bool]
Action = Callable[["TransitionContext"], None]


#: Sentinel distinguishing "absent" from a stored None in Variables.get.
_MISSING = object()

#: Types a variable value may hold without needing any copy at all.
_ATOMIC = (str, int, float, bool, bytes, type(None), frozenset)

#: Recent firings kept per instance for forensics and tests.  The log used
#: to be unbounded, which pinned every delivered Event/FiringResult for a
#: call's whole lifetime — on a long-running sensor the cyclic-GC full
#: collections then scan a heap that grows with *traffic*, not with the
#: live call table.  Anything that needs "how much happened" reads the
#: monotonic ``EfsmInstance.deliveries`` counter instead of ``len(history)``.
HISTORY_KEEP = 32


#: Values copy_state refuses: checkpointing them cannot round-trip (a
#: restored generator/handle would be a different object with lost
#: position), so failing loudly at snapshot time beats corrupting a
#: checkpoint silently.
_UNCHECKPOINTABLE = (
    types.GeneratorType,
    types.CoroutineType,
    types.AsyncGeneratorType,
    io.IOBase,
)


def copy_state(value: Any) -> Any:
    """Deep copy of a plain-data variable value.

    State-variable vectors hold protocol facts — strings, numbers,
    tuples, dicts of the same — so a direct recursive copy beats
    ``copy.deepcopy``'s generic dispatch by an order of magnitude on the
    checkpoint path.  Container *subclasses* (``defaultdict``,
    ``Counter``, ``OrderedDict``, ``deque``, named tuples...) keep their
    exact type: they are copied via ``copy.copy`` — which preserves
    subclass metadata such as ``default_factory`` — and then refilled
    element-by-element so nesting is deep.  Values that cannot survive a
    checkpoint round-trip (generators, coroutines, open file handles)
    raise ``TypeError`` instead of being smuggled in by reference; other
    exotic objects still fall back to ``copy.deepcopy``.
    """
    cls = value.__class__
    if cls in _ATOMIC:
        return value
    if cls is dict:
        return {key: copy_state(item) for key, item in value.items()}
    if cls is tuple:
        return tuple(copy_state(item) for item in value)
    if cls is list:
        return [copy_state(item) for item in value]
    if cls is set:
        return {copy_state(item) for item in value}
    if isinstance(value, _UNCHECKPOINTABLE):
        raise TypeError(
            f"state value of type {cls.__name__} cannot be checkpointed: "
            f"keep generators, coroutines, and file handles out of the "
            f"state-variable vector"
        )
    if isinstance(value, dict):
        # dict subclass: copy.copy preserves the type and its metadata
        # (e.g. defaultdict.default_factory), then deep-refill.
        clone = copy.copy(value)
        clone.clear()
        for key, item in value.items():
            clone[key] = copy_state(item)
        return clone
    if isinstance(value, tuple):
        # Named tuples rebuild through their own constructor; plain tuple
        # subclasses go through the generic (iterable) form.
        items = [copy_state(item) for item in value]
        if hasattr(value, "_fields"):
            return cls(*items)
        return cls(items)
    if isinstance(value, list):
        clone = copy.copy(value)
        clone.clear()
        clone.extend(copy_state(item) for item in value)
        return clone
    if isinstance(value, set):
        clone = copy.copy(value)
        clone.clear()
        clone.update(copy_state(item) for item in value)
        return clone
    return copy.deepcopy(value)


#: Compiled-dispatch entry kinds (see :meth:`Efsm._compile_entry`).  Every
#: (state, event-name, channel) group collapses to exactly one of these at
#: first delivery, so the hot path replaces the per-event probe loop with a
#: dict lookup plus a shape-specific fast path.
_DEVIATION = 0   # no receivable transition: record a specification deviation
_DIRECT = 1      # single unguarded transition: fires unconditionally
_GUARDED = 2     # single guarded transition: one predicate decides
_CHAIN = 3       # ordered guarded chain: first enabled predicate fires
_CONFLICT = 4    # >1 unguarded transition: structurally nondeterministic


@contextmanager
def probed_dispatch():
    """Run with the original enabled-probe delivery loop (tests only).

    The compiled dispatch tables are the default; this context manager
    flips every :class:`Efsm` to the reference probe loop so equivalence
    suites can replay identical traffic down both paths and compare alert
    multisets and firing sequences.
    """
    previous = Efsm.compiled_dispatch
    Efsm.compiled_dispatch = False
    try:
        yield
    finally:
        Efsm.compiled_dispatch = previous


def allow_impure_guard(reason: str) -> Callable[[Predicate], Predicate]:
    """Mark a guard as an audited exception to the purity rule.

    EFSM guards must normally be side-effect-free: ``speclint`` probes
    them against sampled configurations, and incremental checkpointing
    versions calls by firing counts, so a mutating guard corrupts both
    invisibly.  ``codelint``'s guard-purity rules (GP001–GP003, see
    ``docs/CODECHECK.md``) enforce this statically — this decorator is
    the escape hatch for the rare guard whose impurity has been reviewed
    and justified.  ``reason`` is mandatory and stored on the function
    for audits.
    """
    if not reason or not reason.strip():
        raise ValueError("allow_impure_guard requires a non-empty reason")

    def mark(predicate: Predicate) -> Predicate:
        predicate.__impure_guard_reason__ = reason  # type: ignore[attr-defined]
        return predicate

    return mark


class Variables:
    """The state-variable vector ``v``: per-machine locals + shared globals.

    The paper distinguishes ``v.l_*`` (local to one protocol machine) from
    ``v.g_*`` (shared with co-operating machines).  Locals live in this
    object; globals live in a dict shared across all machines of one call.
    """

    __slots__ = ("local", "globals")

    def __init__(self, declarations: Mapping[str, Any],
                 shared_globals: Optional[Dict[str, Any]] = None):
        self.local: Dict[str, Any] = dict(declarations)
        self.globals: Dict[str, Any] = (
            shared_globals if shared_globals is not None else {}
        )

    def __getitem__(self, name: str) -> Any:
        if name in self.local:
            return self.local[name]
        return self.globals[name]

    def __setitem__(self, name: str, value: Any) -> None:
        if name in self.local:
            self.local[name] = value
        else:
            self.globals[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.local or name in self.globals

    def get(self, name: str, default: Any = None) -> Any:
        value = self.local.get(name, _MISSING)
        if value is not _MISSING:
            return value
        return self.globals.get(name, default)

    def snapshot(self) -> Dict[str, Any]:
        merged = dict(self.globals)
        merged.update(self.local)
        return merged

    def restore(self, merged: Mapping[str, Any]) -> None:
        """Inverse of :meth:`snapshot`: write a merged vector back.

        Keys currently declared local land in this machine's locals;
        everything else lands in the shared globals dict — which is
        mutated *in place*, so co-operating machines holding the same
        dict observe the restored values immediately.
        """
        for name, value in merged.items():
            if name in self.local:
                self.local[name] = value
            else:
                self.globals[name] = value


@dataclass(slots=True)
class Output:
    """An output event spec ``c!event(x)`` attached to a transition.

    ``args_from`` builds the argument vector from the firing context when the
    transition executes (defaults to forwarding the triggering event's args).
    """

    channel: str
    event_name: str
    args_from: Optional[Callable[["TransitionContext"], Mapping[str, Any]]] = None

    def build(self, ctx: "TransitionContext") -> Event:
        # Events are immutable, so the default forwarding case shares the
        # triggering event's args mapping instead of copying it per output.
        args = self.args_from(ctx) if self.args_from else ctx.event.args
        return Event(self.event_name, args, channel=self.channel,
                     time=ctx.now)


@dataclass(slots=True)
class Transition:
    """One element of the transition relation T: <s, event, P, A, q>."""

    source: str
    event_name: str
    target: str
    predicate: Optional[Predicate] = None
    action: Optional[Action] = None
    outputs: List[Output] = field(default_factory=list)
    channel: Optional[str] = None   # None = data event; else sync/timer channel
    attack: bool = False            # annotated attack signature (s_attack)
    label: str = ""

    def enabled(self, ctx: "TransitionContext") -> bool:
        if self.channel != ctx.event.channel:
            return False
        predicate = self.predicate
        return True if predicate is None else bool(predicate(ctx))

    def describe(self) -> str:
        name = self.label or f"{self.source}--{self.event_name}-->{self.target}"
        return f"{'[ATTACK] ' if self.attack else ''}{name}"


class TransitionContext:
    """What a predicate/action can see and do while a transition fires."""

    __slots__ = ("instance", "event", "v", "x", "scratch")

    def __init__(self, instance: "EfsmInstance", event: Event):
        self.instance = instance
        self.event = event
        #: The state-variable vector (locals + shared globals).
        self.v: Variables = instance.variables
        #: The event's input vector.
        self.x: Mapping[str, Any] = event.args
        #: Per-delivery scratch space.  All candidate predicates of one
        #: delivery see the same context, so guards can memoize shared
        #: sub-computations here (created lazily; dies with the delivery).
        self.scratch: Optional[Dict[str, Any]] = None

    @property
    def now(self) -> float:
        # Events are stamped with the clock when built, at the instant they
        # are delivered — reuse that instead of another clock call.
        time = self.event.time
        if time is not None:
            return time
        return self.instance.clock_now()

    def start_timer(self, name: str, delay: float,
                    args: Optional[Mapping[str, Any]] = None) -> None:
        """Start (or restart) a named timer; expiry injects a timer event."""
        self.instance.start_timer(name, delay, args)

    def cancel_timer(self, name: str) -> None:
        self.instance.cancel_timer(name)

    def emit(self, channel: str, event_name: str,
             args: Optional[Mapping[str, Any]] = None) -> None:
        """Dynamically emit ``channel!event_name(args)`` from an action."""
        pending = self.instance.pending_outputs
        if pending is None:
            pending = self.instance.pending_outputs = []
        pending.append(
            Event(event_name, dict(args or {}), channel=channel, time=self.now))


@dataclass(slots=True)
class FiringResult:
    """Outcome of delivering one event to a machine instance."""

    machine: str
    event: Event
    transition: Optional[Transition]
    from_state: str
    to_state: str
    outputs: List[Event] = field(default_factory=list)
    time: float = 0.0

    @property
    def deviation(self) -> bool:
        """True when no transition was enabled — a specification deviation."""
        return self.transition is None

    @property
    def attack(self) -> bool:
        return self.transition is not None and self.transition.attack

    def describe(self) -> str:
        """One-line human summary used by the forensic timeline."""
        if self.transition is None:
            return (f"{self.machine}: {self.event.name} deviated in "
                    f"{self.from_state}")
        arrow = f"{self.from_state} -> {self.to_state}"
        tag = " [ATTACK]" if self.attack else ""
        return f"{self.machine}: {self.event.name} fired {arrow}{tag}"


class Efsm:
    """An EFSM definition: the quintuple (Σ, S, v, D, T)."""

    #: Class-wide switch between the compiled per-(state, event, channel)
    #: dispatch tables and the reference probe loop.  Compiled dispatch is
    #: the default; :func:`probed_dispatch` flips it for equivalence tests.
    compiled_dispatch: bool = True

    def __init__(self, name: str, initial_state: str):
        self.name = name
        self.initial_state = initial_state
        self.states: Dict[str, Dict[str, Any]] = {initial_state: {}}
        self.variables: Dict[str, Any] = {}         # name -> default (v, D)
        self.global_variables: Dict[str, Any] = {}  # declared shared defaults
        self.transitions: List[Transition] = []
        self._index: Dict[Tuple[str, str], List[Transition]] = {}
        #: Lazily built dispatch table: (state, event-name, channel) ->
        #: a compiled entry (kind tag + the data its fast path needs).
        #: Derived entirely from ``transitions``; cleared on every
        #: ``add_transition`` and shared by all instances of this
        #: definition, so the cost is paid once per definition, not once
        #: per monitored call.
        self._compiled: Dict[
            Tuple[str, str, Optional[str]], Tuple[Any, ...]] = {}
        self.attack_states: set = set()
        self.final_states: set = set()
        #: Σ — event alphabet, accumulated from transitions.
        self.alphabet: set = set()
        #: Declared synchronization channels this machine may send or
        #: receive on (the paper's FIFO queues).  The timer pseudo-channel
        #: is always implicitly available.
        self.channels: set = set()

    # -- construction ------------------------------------------------------

    def add_state(self, name: str, attack: bool = False,
                  final: bool = False) -> "Efsm":
        self.states.setdefault(name, {})
        if attack:
            self.attack_states.add(name)
        if final:
            self.final_states.add(name)
        return self

    def declare(self, **defaults: Any) -> "Efsm":
        """Declare local state variables with default values."""
        self.variables.update(defaults)
        return self

    def declare_global(self, **defaults: Any) -> "Efsm":
        """Declare shared (cross-machine) variables with defaults."""
        self.global_variables.update(defaults)
        return self

    def declare_channel(self, *names: str) -> "Efsm":
        """Declare the sync channels this machine's transitions may use.

        ``validate()`` rejects transitions whose inputs or outputs reference
        a channel that was never declared — a typo'd channel name would
        otherwise silently orphan the synchronization event at runtime.
        """
        self.channels.update(names)
        return self

    def add_transition(
        self,
        source: str,
        event_name: str,
        target: str,
        predicate: Optional[Predicate] = None,
        action: Optional[Action] = None,
        outputs: Optional[Iterable[Output]] = None,
        channel: Optional[str] = None,
        attack: bool = False,
        label: str = "",
    ) -> Transition:
        for state in (source, target):
            if state not in self.states:
                raise DefinitionError(
                    f"{self.name}: unknown state {state!r} in transition")
        transition = Transition(
            source=source,
            event_name=event_name,
            target=target,
            predicate=predicate,
            action=action,
            outputs=list(outputs or []),
            channel=channel,
            attack=attack or target in self.attack_states,
            label=label,
        )
        self.transitions.append(transition)
        self._index.setdefault((source, event_name), []).append(transition)
        self.alphabet.add(event_name)
        if self._compiled:
            self._compiled.clear()
        return transition

    def transitions_from(self, state: str, event_name: str) -> List[Transition]:
        return self._index.get((state, event_name), [])

    def _compile_entry(
            self, key: Tuple[str, str, Optional[str]]) -> Tuple[Any, ...]:
        """Build (and cache) the dispatch entry for one delivery shape.

        The channel filter and the group-size dispatch are resolved here,
        once per (state, event, channel) triple, instead of per delivered
        event.  First-match semantics for guarded chains are sound because
        speclint's determinism rule (and :meth:`check_determinism`)
        guarantee mutual disjointness of the predicates; a group with more
        than one *unguarded* transition is nondeterministic for every
        input, so it compiles to a conflict entry that raises on delivery.
        """
        state, event_name, channel = key
        group = self._index.get((state, event_name), ())
        candidates = tuple(t for t in group if t.channel == channel)
        if not candidates:
            entry: Tuple[Any, ...] = (_DEVIATION, None)
        elif len(candidates) == 1:
            transition = candidates[0]
            if transition.predicate is None:
                entry = (_DIRECT, transition)
            else:
                entry = (_GUARDED, transition)
        elif sum(1 for t in candidates if t.predicate is None) > 1:
            entry = (_CONFLICT, candidates)
        else:
            entry = (_CHAIN, candidates)
        self._compiled[key] = entry
        return entry

    def validate(self) -> None:
        """Sanity-check the definition; raises :class:`DefinitionError`."""
        if self.initial_state not in self.states:
            raise DefinitionError(f"{self.name}: missing initial state")
        reachable = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            for transition in self.transitions:
                if transition.source == state and transition.target not in reachable:
                    reachable.add(transition.target)
                    frontier.append(transition.target)
        unreachable = set(self.states) - reachable
        if unreachable:
            raise DefinitionError(
                f"{self.name}: unreachable states: {sorted(unreachable)}")
        for transition in self.transitions:
            if (transition.channel not in (None, TIMER_CHANNEL)
                    and transition.channel not in self.channels):
                raise DefinitionError(
                    f"{self.name}: transition {transition.describe()} "
                    f"receives on undeclared channel {transition.channel!r} "
                    f"(declare_channel it first)")
            for output in transition.outputs:
                if output.channel not in self.channels:
                    raise DefinitionError(
                        f"{self.name}: transition {transition.describe()} "
                        f"sends {output.event_name!r} on undeclared channel "
                        f"{output.channel!r} (declare_channel it first)")

    # -- analysis ------------------------------------------------------------

    def check_determinism(
        self,
        configurations: Iterable[Tuple[Dict[str, Any], Event]],
        clock_now: Callable[[], float] = lambda: 0.0,
    ) -> None:
        """Verify mutual disjointness of predicates on sampled configurations.

        For each (variable valuation, event) sample, every (state, event)
        transition group must enable at most one transition; otherwise
        :class:`NondeterminismError` is raised.  This is the executable
        counterpart of the paper's P_i ∧ P_j = ∅ requirement.
        """
        for valuation, event in configurations:
            for (state, event_name), group in self._index.items():
                if event_name != event.name or len(group) < 2:
                    continue
                probe = EfsmInstance(self, clock_now=clock_now)
                probe.state = state
                probe.variables.local.update(
                    {k: v for k, v in valuation.items() if k in probe.variables.local})
                probe.variables.globals.update(
                    {k: v for k, v in valuation.items()
                     if k not in probe.variables.local})
                ctx = TransitionContext(probe, event)
                enabled = [t for t in group if t.enabled(ctx)]
                if len(enabled) > 1:
                    raise NondeterminismError(
                        f"{self.name}: state {state!r} event {event.name!r} "
                        f"enables {len(enabled)} transitions: "
                        f"{[t.describe() for t in enabled]}")


class EfsmInstance:
    """A running copy of an :class:`Efsm` (one per monitored call)."""

    #: Two instances per monitored call: ``__slots__`` removes the instance
    #: dict (one fewer GC-tracked object per instance, and full gen-2
    #: collections scan every live call's objects).
    __slots__ = (
        "definition", "state", "variables", "clock_now", "_timer_scheduler",
        "_timers", "_timer_meta", "pending_outputs", "history", "deliveries",
        "on_timer_event",
    )

    def __init__(
        self,
        definition: Efsm,
        shared_globals: Optional[Dict[str, Any]] = None,
        clock_now: Callable[[], float] = lambda: 0.0,
        timer_scheduler: Optional[Callable[[float, Callable[[], None]], Any]] = None,
        seed_globals: bool = True,
    ):
        self.definition = definition
        self.state = definition.initial_state
        globals_dict = shared_globals if shared_globals is not None else {}
        if seed_globals:
            # A SystemTemplate pre-merges every machine's global defaults
            # into the shared dict once per call (seed_globals=False); the
            # standalone path seeds them per instance here.
            for key, value in definition.global_variables.items():
                globals_dict.setdefault(key, value)
        self.variables = Variables(dict(definition.variables), globals_dict)
        self.clock_now = clock_now
        self._timer_scheduler = timer_scheduler
        #: Created on first :meth:`start_timer` — most instances (e.g. the
        #: per-call SIP machine on a short call) never arm a timer, and the
        #: two dict allocations per instance showed up in call setup.
        self._timers: Optional[Dict[str, Any]] = None
        #: name -> (absolute deadline, event args): the serializable view
        #: of the opaque scheduler handles, kept so :meth:`snapshot` can
        #: record live timers and :meth:`restore` can re-arm them.
        self._timer_meta: Optional[Dict[str, Tuple[float, Dict[str, Any]]]] = None
        #: Events queued by ``ctx.emit`` during the current firing; lazy
        #: (None) — most transitions use declarative outputs instead.
        self.pending_outputs: Optional[List[Event]] = None
        #: Bounded recent-firing log (newest last); see :data:`HISTORY_KEEP`.
        self.history: "deque[FiringResult]" = deque(maxlen=HISTORY_KEEP)
        #: Monotonic count of every delivery ever made to this instance —
        #: the change-version signal that ``len(history)`` used to provide
        #: before the log was bounded.
        self.deliveries: int = 0
        #: Delivery hook for timer events when no system owns the instance.
        self.on_timer_event: Optional[Callable[[Event], None]] = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def in_attack_state(self) -> bool:
        return self.state in self.definition.attack_states

    @property
    def in_final_state(self) -> bool:
        return self.state in self.definition.final_states

    # -- timers --------------------------------------------------------------

    def start_timer(self, name: str, delay: float,
                    args: Optional[Mapping[str, Any]] = None) -> None:
        if self._timer_scheduler is None:
            raise RuntimeError(
                f"{self.name}: no timer scheduler attached; cannot start "
                f"timer {name!r}")
        if self._timers is None:
            self._timers = {}
            self._timer_meta = {}
        else:
            self.cancel_timer(name)
        event_args = dict(args or {})

        def fire() -> None:
            self._timers.pop(name, None)
            self._timer_meta.pop(name, None)
            event = Event(name, event_args, channel=TIMER_CHANNEL,
                          time=self.clock_now())
            if self.on_timer_event is not None:
                self.on_timer_event(event)
            else:
                self.deliver(event)

        self._timers[name] = self._timer_scheduler(delay, fire)
        self._timer_meta[name] = (self.clock_now() + delay, event_args)

    def cancel_timer(self, name: str) -> None:
        if self._timers is None:
            return
        handle = self._timers.pop(name, None)
        self._timer_meta.pop(name, None)
        if handle is not None and hasattr(handle, "cancel"):
            handle.cancel()

    def cancel_all_timers(self) -> None:
        if self._timers:
            for name in list(self._timers):
                self.cancel_timer(name)

    @property
    def active_timers(self) -> List[str]:
        return sorted(self._timers) if self._timers else []

    # -- checkpoint / restore -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of the running state.

        Captures the control state, the local variable vector, and the
        live timers (absolute deadlines + event args) — everything needed
        to rebuild this instance with :meth:`restore`.  Shared globals are
        deliberately *not* included: they belong to the owning
        :class:`~repro.efsm.system.EfsmSystem`, which snapshots them once
        for all machines of a call.
        """
        timer_meta = self._timer_meta
        return {
            "machine": self.name,
            "state": self.state,
            "locals": copy_state(self.variables.local),
            "timers": {
                name: {"at": deadline, "args": copy_state(args)}
                for name, (deadline, args) in timer_meta.items()
            } if timer_meta else {},
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Rebuild the running state from a :meth:`snapshot`.

        Timers are re-armed against the current scheduler with their
        original absolute deadlines; a deadline already in the past fires
        on the next clock advance (the call was down when it expired).
        """
        machine = snapshot.get("machine")
        if machine is not None and machine != self.name:
            raise DefinitionError(
                f"cannot restore snapshot of {machine!r} into {self.name!r}")
        self.cancel_all_timers()
        self.state = snapshot["state"]
        self.variables.local.clear()
        self.variables.local.update(copy_state(snapshot["locals"]))
        now = self.clock_now()
        for name, timer in snapshot.get("timers", {}).items():
            deadline = timer["at"]
            self.start_timer(name, max(0.0, deadline - now), timer["args"])
            # Keep the recorded deadline exact (now + (at - now) need not
            # round-trip in floating point): re-snapshots must be
            # byte-identical.
            self._timer_meta[name] = (deadline, dict(timer["args"]))

    # -- execution -----------------------------------------------------------

    def deliver(self, event: Event) -> FiringResult:
        """Deliver one event; fire the enabled transition (if any).

        Returns a :class:`FiringResult` whose ``deviation`` flag is set when
        no transition was enabled.  Dispatch goes through the definition's
        compiled per-(state, event, channel) table: the channel filter and
        group shape were resolved at compile time, so the common shapes
        (deviation, single transition) skip the candidate loop entirely and
        guarded chains fire the first enabled predicate in declaration
        order.  Raises :class:`NondeterminismError` for structurally
        nondeterministic groups (more than one unguarded transition); the
        reference probe loop (:func:`probed_dispatch`) additionally detects
        overlapping predicates at runtime.
        """
        definition = self.definition
        if not definition.compiled_dispatch:
            return self._deliver_probed(event)
        key = (self.state, event.name, event.channel)
        entry = definition._compiled.get(key)
        if entry is None:
            entry = definition._compile_entry(key)
        kind = entry[0]
        ctx: Optional[TransitionContext] = None
        if kind == _DIRECT:
            transition: Optional[Transition] = entry[1]
        elif kind == _GUARDED:
            transition = entry[1]
            ctx = TransitionContext(self, event)
            if not transition.predicate(ctx):  # type: ignore[misc]
                transition = None
        elif kind == _DEVIATION:
            transition = None
        elif kind == _CHAIN:
            ctx = TransitionContext(self, event)
            transition = None
            for candidate in entry[1]:
                predicate = candidate.predicate
                if predicate is None or predicate(ctx):
                    transition = candidate
                    break
        else:  # _CONFLICT: every delivery enables >1 transition
            raise NondeterminismError(
                f"{self.name}: state {self.state!r} event {event.name!r} "
                f"enables {len(entry[1])} transitions")

        from_state = self.state
        outputs: List[Event] = []
        if transition is not None:
            action = transition.action
            if action is not None or transition.outputs:
                if ctx is None:
                    ctx = TransitionContext(self, event)
                if action is not None:
                    action(ctx)
                for output in transition.outputs:
                    outputs.append(output.build(ctx))
            if self.pending_outputs:
                outputs.extend(self.pending_outputs)
                self.pending_outputs = None
            self.state = transition.target

        # Packet and timer events are stamped with the clock when built, at
        # the same instant they are delivered — reuse that instead of paying
        # another clock call per firing.
        time = event.time
        if time is None:
            time = self.clock_now()
        result = FiringResult(
            machine=self.name,
            event=event,
            transition=transition,
            from_state=from_state,
            to_state=self.state,
            outputs=outputs,
            time=time,
        )
        self.deliveries += 1
        self.history.append(result)
        return result

    def _deliver_probed(self, event: Event) -> FiringResult:
        """Reference delivery: probe every candidate's enabledness.

        The pre-compilation loop, kept verbatim behind
        :func:`probed_dispatch` as the oracle for dispatch-equivalence
        tests.  Unlike the compiled path it evaluates *every* candidate
        predicate, so it also detects overlapping (nondeterministic)
        guards at runtime.
        """
        ctx = TransitionContext(self, event)
        candidates = self.definition.transitions_from(self.state, event.name)
        transition: Optional[Transition] = None
        channel = event.channel
        for candidate in candidates:
            # Inlined Transition.enabled — this probe loop runs for every
            # candidate of every delivered event.
            if candidate.channel != channel:
                continue
            predicate = candidate.predicate
            if predicate is None or predicate(ctx):
                if transition is None:
                    transition = candidate
                else:
                    # Error path only: re-evaluate to report the exact count.
                    enabled = [t for t in candidates if t.enabled(ctx)]
                    raise NondeterminismError(
                        f"{self.name}: state {self.state!r} event "
                        f"{event.name!r} enables {len(enabled)} transitions")

        from_state = self.state
        outputs: List[Event] = []
        if transition is not None:
            if transition.action is not None:
                transition.action(ctx)
            for output in transition.outputs:
                outputs.append(output.build(ctx))
            if self.pending_outputs:
                outputs.extend(self.pending_outputs)
                self.pending_outputs = None
            self.state = transition.target

        time = event.time
        if time is None:
            time = self.clock_now()
        result = FiringResult(
            machine=self.name,
            event=event,
            transition=transition,
            from_state=from_state,
            to_state=self.state,
            outputs=outputs,
            time=time,
        )
        self.deliveries += 1
        self.history.append(result)
        return result
