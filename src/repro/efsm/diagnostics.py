"""Structured diagnostics for static EFSM specification verification.

The spec-lint subsystem (:mod:`repro.efsm.verify`) reports findings as
:class:`Diagnostic` records rather than raising: a linter's job is to show
*every* problem, attribute each to a rule, and let the caller decide what is
fatal.  Three consumers share this vocabulary:

- the ``speclint`` CLI subcommand (text and JSON rendering, exit codes);
- the vids engine's registration-time gate (fail-fast on ERROR findings);
- the pytest suite asserting the shipped SIP/RTP specs are clean.

Rule identifiers are stable strings (``unreachable-state``,
``sync-deadlock``, ...) documented in ``docs/SPECCHECK.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "max_severity",
    "errors_only",
    "count_by_severity",
    "format_report",
    "diagnostics_to_dicts",
]


class Severity(enum.IntEnum):
    """Finding severity; ordering is meaningful (ERROR > WARNING > INFO)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "ERROR" instead of "Severity.ERROR"
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One spec-lint finding: rule id, severity, location, and a fix hint."""

    rule: str
    severity: Severity
    message: str
    machine: Optional[str] = None
    state: Optional[str] = None
    transition: Optional[str] = None
    channel: Optional[str] = None
    event: Optional[str] = None
    hint: str = ""
    #: Free-form extra context (path witnesses, sampled valuations, ...).
    data: Dict[str, Any] = field(default_factory=dict, compare=False)

    def location(self) -> str:
        """Compact ``machine[/state][/transition]`` locator string."""
        parts = [self.machine or "<system>"]
        if self.state:
            parts.append(f"state={self.state}")
        if self.transition:
            parts.append(f"transition={self.transition}")
        if self.channel:
            parts.append(f"channel={self.channel}")
        if self.event:
            parts.append(f"event={self.event}")
        return " ".join(parts)

    def describe(self) -> str:
        text = f"{self.severity}: [{self.rule}] {self.location()}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "machine": self.machine,
            "state": self.state,
            "transition": self.transition,
            "channel": self.channel,
            "event": self.event,
            "hint": self.hint,
            "data": dict(self.data),
        }


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for an empty report."""
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity >= Severity.ERROR]


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        key = str(diagnostic.severity)
        counts[key] = counts.get(key, 0) + 1
    return counts


def diagnostics_to_dicts(diagnostics: Iterable[Diagnostic]) -> List[Dict[str, Any]]:
    return [d.to_dict() for d in diagnostics]


def format_report(diagnostics: Iterable[Diagnostic],
                  min_severity: Severity = Severity.INFO,
                  label: str = "speclint") -> str:
    """Human-readable report grouped by machine, worst findings first.

    ``label`` names the producing linter in the summary lines: the same
    Diagnostic vocabulary is shared by ``speclint`` (spec verification)
    and ``codelint`` (implementation-invariant analysis).
    """
    shown = sorted(
        (d for d in diagnostics if d.severity >= min_severity),
        key=lambda d: (d.machine or "", -int(d.severity), d.rule,
                       d.state or "", d.message),
    )
    if not shown:
        return f"{label}: no findings"
    lines: List[str] = []
    current: Optional[str] = None   # group names are never empty
    for diagnostic in shown:
        group = diagnostic.machine or "<system>"
        if group != current:
            lines.append(f"-- {group} --")
            current = group
        lines.append(f"  {diagnostic.describe()}")
    counts = count_by_severity(shown)
    summary = ", ".join(f"{counts[name]} {name.lower()}"
                        for name in ("ERROR", "WARNING", "INFO")
                        if name in counts)
    lines.append(f"{label}: {summary}")
    return "\n".join(lines)
