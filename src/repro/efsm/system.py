"""Communicating EFSMs: the per-call system of interacting protocol machines.

"We construct communicating finite state machines by connecting the output
of one machine to the input of another machine" (Section 4).  An
:class:`EfsmSystem` owns one instance of each protocol machine, the shared
global variable vector, and the FIFO synchronization channels between them.
Sync events waiting in channels are consumed **before** data-packet events,
honouring the paper's priority rule.
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .channels import Channel, channel_name
from .errors import DefinitionError
from .events import Event
from .machine import HISTORY_KEEP, Efsm, EfsmInstance, FiringResult, copy_state

__all__ = ["EfsmSystem", "SystemTemplate", "ManualClock"]


class _TimerHandle:
    """Cancellation handle for one :class:`ManualClock` timer entry."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry[3] = True


class ManualClock:
    """A trivially settable clock + scheduler for unit-testing machines.

    ``advance`` moves time forward and fires due timers in (time, seq)
    order.  Timers live in a binary heap with lazy cancellation, so the
    common no-timer-due ``advance`` is O(1) and each firing is O(log n) —
    the benchmarks drive thousands of monitored calls through one clock.
    """

    def __init__(self) -> None:
        self.time = 0.0
        self._timers: List[list] = []
        self._seq = 0

    def now(self) -> float:
        return self.time

    def schedule(self, delay: float, callback: Callable[[], None]):
        entry = [self.time + delay, self._seq, callback, False]
        self._seq += 1
        heapq.heappush(self._timers, entry)
        return _TimerHandle(entry)

    def advance(self, delta: float) -> None:
        target = self.time + delta
        timers = self._timers
        while timers and timers[0][0] <= target:
            fire_time, _, callback, cancelled = heapq.heappop(timers)
            if cancelled:
                continue
            self.time = fire_time
            callback()
        self.time = target


class SystemTemplate:
    """Precompiled plain-data prototype of a per-call :class:`EfsmSystem`.

    Building a system through ``add_machine``/``connect`` re-validates
    machine names, re-merges global defaults, and re-derives channel names
    for every monitored call, even though all of it depends only on the
    (immutable) definitions.  A template does that work once per
    configuration: it freezes the definition tuple, the merged global
    default vector, and the channel topology, so
    :meth:`EfsmSystem.from_template` instantiates a call as a shallow
    clone of plain data.  The definitions' compiled dispatch tables are
    shared by every instance, so per-call setup compiles nothing.
    """

    __slots__ = ("definitions", "global_defaults", "channel_specs")

    def __init__(self, definitions: Iterable[Efsm],
                 connections: Iterable[Tuple[str, str]] = ()):
        self.definitions: Tuple[Efsm, ...] = tuple(definitions)
        names = set()
        for definition in self.definitions:
            if definition.name in names:
                raise DefinitionError(f"duplicate machine: {definition.name}")
            names.add(definition.name)
        merged: Dict[str, Any] = {}
        for definition in self.definitions:
            for key, value in definition.global_variables.items():
                merged.setdefault(key, value)
        #: The shared global vector every new call starts from (the same
        #: first-declaration-wins merge ``add_machine`` performs).
        self.global_defaults: Dict[str, Any] = merged
        specs = []
        for sender, receiver in connections:
            for machine in (sender, receiver):
                if machine not in names:
                    raise DefinitionError(f"unknown machine: {machine}")
            specs.append((channel_name(sender, receiver), sender, receiver))
        #: (canonical name, sender, receiver) for each FIFO channel.
        self.channel_specs: Tuple[Tuple[str, str, str], ...] = tuple(specs)


class EfsmSystem:
    """A set of interacting EFSM instances sharing globals and channels."""

    #: One system per monitored call: ``__slots__`` keeps the per-call
    #: footprint at the attributes below (no instance dict for the cyclic
    #: GC to scan) and the alert-like lists are lazy — benign calls never
    #: allocate them.
    __slots__ = (
        "clock_now", "timer_scheduler", "machines", "channels",
        "_channel_list", "globals", "results", "deliveries",
        "_deviations", "_attack_matches", "_undeliverable",
        "on_result", "on_output",
    )

    def __init__(
        self,
        clock_now: Callable[[], float] = lambda: 0.0,
        timer_scheduler: Optional[Callable[[float, Callable[[], None]], Any]] = None,
    ):
        self.clock_now = clock_now
        self.timer_scheduler = timer_scheduler
        self.machines: Dict[str, EfsmInstance] = {}
        self.channels: Dict[str, Channel] = {}
        #: Flat view of ``channels.values()`` kept in sync by :meth:`connect`;
        #: lets the per-packet empty-channel check skip dict-view creation.
        self._channel_list: List[Channel] = []
        self.globals: Dict[str, Any] = {}
        #: Bounded recent-firing log (newest last).  ``deliveries`` below is
        #: the monotonic firing count — change-version consumers must read
        #: that, not ``len(results)``.
        self.results: "deque[FiringResult]" = deque(maxlen=HISTORY_KEEP)
        #: Total firings ever recorded by this system.
        self.deliveries: int = 0
        #: Lazily created by the ``deviations``/``attack_matches``/
        #: ``undeliverable`` properties — sparse, alert-like output.
        self._deviations: Optional[List[FiringResult]] = None
        self._attack_matches: Optional[List[FiringResult]] = None
        self._undeliverable: Optional[List[Event]] = None
        #: Hook invoked for every firing result (the vids analysis engine).
        self.on_result: Optional[Callable[[FiringResult], None]] = None
        #: Hook invoked for every routed output event ``c!event(x)`` —
        #: the δ-messages between machines — with the sending machine's
        #: name.  Also fires for outputs addressed to the environment
        #: (undeliverable here).  Used by call-scoped tracing.
        self.on_output: Optional[Callable[[str, Event], None]] = None

    @property
    def deviations(self) -> List[FiringResult]:
        """Every deviation firing (unbounded; deviations are alerts)."""
        existing = self._deviations
        if existing is None:
            existing = self._deviations = []
        return existing

    @property
    def attack_matches(self) -> List[FiringResult]:
        """Every attack-transition firing (unbounded; these are alerts)."""
        existing = self._attack_matches
        if existing is None:
            existing = self._attack_matches = []
        return existing

    @property
    def undeliverable(self) -> List[Event]:
        """Output events addressed to machines this system does not
        contain (outputs to the environment); kept for inspection."""
        existing = self._undeliverable
        if existing is None:
            existing = self._undeliverable = []
        return existing

    # -- construction -------------------------------------------------------

    @classmethod
    def from_template(
        cls,
        template: SystemTemplate,
        clock_now: Callable[[], float] = lambda: 0.0,
        timer_scheduler: Optional[Callable[[float, Callable[[], None]], Any]] = None,
    ) -> "EfsmSystem":
        """Instantiate a call system from a precompiled template.

        Equivalent to ``add_machine`` per definition plus ``connect`` per
        channel spec, but with all per-config work (name validation,
        global-default merging, channel naming) done once at template
        build time — the per-call cost is the shallow data clone.
        """
        system = cls(clock_now=clock_now, timer_scheduler=timer_scheduler)
        shared = system.globals
        shared.update(template.global_defaults)
        machines = system.machines
        deliver_timer = system._deliver_timer
        for definition in template.definitions:
            instance = EfsmInstance(
                definition,
                shared_globals=shared,
                clock_now=clock_now,
                timer_scheduler=timer_scheduler,
                seed_globals=False,
            )
            instance.on_timer_event = partial(deliver_timer, definition.name)
            machines[definition.name] = instance
        # Channels are created on demand by the first routed output
        # (:meth:`_route_output` falls through to :meth:`connect`): the
        # template's channel_specs validated the topology at build time,
        # and most calls never enqueue anything on the reverse direction —
        # instantiating both FIFOs up front was pure setup cost.
        return system

    def add_machine(self, definition: Efsm) -> EfsmInstance:
        if definition.name in self.machines:
            raise DefinitionError(f"duplicate machine: {definition.name}")
        instance = EfsmInstance(
            definition,
            shared_globals=self.globals,
            clock_now=self.clock_now,
            timer_scheduler=self.timer_scheduler,
        )
        instance.on_timer_event = (
            lambda event, name=definition.name: self._deliver_timer(name, event)
        )
        self.machines[definition.name] = instance
        return instance

    def connect(self, sender: str, receiver: str) -> Channel:
        """Create (or return) the FIFO channel from sender to receiver."""
        name = channel_name(sender, receiver)
        if name not in self.channels:
            for machine in (sender, receiver):
                if machine not in self.machines:
                    raise DefinitionError(f"unknown machine: {machine}")
            channel = Channel(sender, receiver)
            self.channels[name] = channel
            self._channel_list.append(channel)
        return self.channels[name]

    # -- execution -----------------------------------------------------------

    def inject(self, machine: str, event: Event) -> List[FiringResult]:
        """Deliver a data-packet event, honouring sync-queue priority.

        Any synchronization events already queued are drained first; the
        data event is then fired; outputs it produces are routed onto their
        channels and drained in turn.  Returns every firing this caused.
        """
        fired: List[FiringResult] = []
        self._drain_channels(fired)
        self._fire(machine, event, fired)
        self._drain_channels(fired)
        return fired

    def _deliver_timer(self, machine: str, event: Event) -> List[FiringResult]:
        fired: List[FiringResult] = []
        self._fire(machine, event, fired)
        self._drain_channels(fired)
        return fired

    def _fire(self, machine: str, event: Event,
              accumulator: List[FiringResult]) -> None:
        instance = self.machines.get(machine)
        if instance is None:
            raise DefinitionError(f"unknown machine: {machine}")
        result = instance.deliver(event)
        accumulator.append(result)
        self._record(result)
        for output in result.outputs:
            self._route_output(machine, output)

    def _route_output(self, sender: str, event: Event) -> None:
        """Queue an output event onto its channel (created on demand)."""
        if event.channel is None:
            return
        hook = self.on_output
        if "->" in event.channel:
            channel = self.channels.get(event.channel)
            if channel is None:
                sender_name, _, receiver = event.channel.partition("->")
                if receiver not in self.machines:
                    # Output to the environment (no such machine here):
                    # record it rather than failing the transition.
                    if hook is not None:
                        hook(sender, event)
                    self.undeliverable.append(event)
                    return
                channel = self.connect(sender_name, receiver)
        else:
            if event.channel not in self.machines:
                if hook is not None:
                    hook(sender, event)
                self.undeliverable.append(event)
                return
            channel = self.connect(sender, event.channel)
            event = Event(event.name, event.args, channel=channel.name,
                          time=event.time)
        if hook is not None:
            hook(sender, event)
        channel.put(event)

    def _drain_channels(self, accumulator: List[FiringResult]) -> None:
        """Consume queued sync events until every channel is empty."""
        # Fast path for the steady state (nothing queued): a plain loop over
        # the flat channel list with C-level deque truthiness, run twice per
        # injected data packet.
        for channel in self._channel_list:
            if channel._queue:
                break
        else:
            return
        # List iteration reads by index, so channels connected mid-drain
        # (appended to the flat list) are reached on the same sweep.
        channel_list = self._channel_list
        progress = True
        while progress:
            progress = False
            for channel in channel_list:
                queue = channel._queue
                while queue:
                    event = channel.get()
                    assert event is not None
                    self._fire(channel.receiver, event, accumulator)
                    progress = True

    def _record(self, result: FiringResult) -> None:
        self.deliveries += 1
        self.results.append(result)
        if result.deviation:
            self.deviations.append(result)
        if result.attack:
            self.attack_matches.append(result)
        if self.on_result is not None:
            self.on_result(result)

    # -- checkpoint / restore --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of the whole call's state.

        Captures the shared globals once, every machine's
        :meth:`~repro.efsm.machine.EfsmInstance.snapshot`, and any sync
        events still queued on channels (normally empty at packet
        boundaries, but checkpoints must not assume it).
        """
        channels: Dict[str, List[Dict[str, Any]]] = {}
        for name, channel in self.channels.items():
            if channel._queue:
                channels[name] = [
                    {"name": event.name, "args": copy_state(dict(event.args)),
                     "time": event.time}
                    for event in channel._queue
                ]
        return {
            "globals": copy_state(self.globals),
            "machines": {name: instance.snapshot()
                         for name, instance in self.machines.items()},
            "channels": channels,
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Rebuild machine states, globals, and channels from a snapshot.

        The shared globals dict is mutated *in place* — every machine's
        :class:`~repro.efsm.machine.Variables` holds a reference to it, so
        identity must survive the restore.
        """
        self.globals.clear()
        self.globals.update(copy_state(snapshot["globals"]))
        for name, machine_snapshot in snapshot["machines"].items():
            instance = self.machines.get(name)
            if instance is None:
                raise DefinitionError(f"unknown machine: {name}")
            instance.restore(machine_snapshot)
        for channel in self._channel_list:
            channel._queue.clear()
        for name, events in snapshot.get("channels", {}).items():
            channel = self.channels.get(name)
            if channel is None:
                sender, _, receiver = name.partition("->")
                channel = self.connect(sender, receiver)
            for spec in events:
                channel.put(Event(spec["name"], copy_state(spec["args"]),
                                  channel=name, time=spec["time"]))

    # -- teardown / inspection -------------------------------------------------

    def cancel_all_timers(self) -> None:
        for instance in self.machines.values():
            instance.cancel_all_timers()

    @property
    def all_final(self) -> bool:
        """True when every machine rests in a final state (call can be
        deleted from the fact base, as Section 7.3 describes)."""
        for machine in self.machines.values():
            if machine.state not in machine.definition.final_states:
                return False
        return True

    def states(self) -> Dict[str, str]:
        return {name: m.state for name, m in self.machines.items()}
