"""Communicating EFSMs: the per-call system of interacting protocol machines.

"We construct communicating finite state machines by connecting the output
of one machine to the input of another machine" (Section 4).  An
:class:`EfsmSystem` owns one instance of each protocol machine, the shared
global variable vector, and the FIFO synchronization channels between them.
Sync events waiting in channels are consumed **before** data-packet events,
honouring the paper's priority rule.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Mapping, Optional

from .channels import Channel, channel_name
from .errors import DefinitionError
from .events import Event
from .machine import Efsm, EfsmInstance, FiringResult, copy_state

__all__ = ["EfsmSystem", "ManualClock"]


class _TimerHandle:
    """Cancellation handle for one :class:`ManualClock` timer entry."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry[3] = True


class ManualClock:
    """A trivially settable clock + scheduler for unit-testing machines.

    ``advance`` moves time forward and fires due timers in (time, seq)
    order.  Timers live in a binary heap with lazy cancellation, so the
    common no-timer-due ``advance`` is O(1) and each firing is O(log n) —
    the benchmarks drive thousands of monitored calls through one clock.
    """

    def __init__(self) -> None:
        self.time = 0.0
        self._timers: List[list] = []
        self._seq = 0

    def now(self) -> float:
        return self.time

    def schedule(self, delay: float, callback: Callable[[], None]):
        entry = [self.time + delay, self._seq, callback, False]
        self._seq += 1
        heapq.heappush(self._timers, entry)
        return _TimerHandle(entry)

    def advance(self, delta: float) -> None:
        target = self.time + delta
        timers = self._timers
        while timers and timers[0][0] <= target:
            fire_time, _, callback, cancelled = heapq.heappop(timers)
            if cancelled:
                continue
            self.time = fire_time
            callback()
        self.time = target


class EfsmSystem:
    """A set of interacting EFSM instances sharing globals and channels."""

    def __init__(
        self,
        clock_now: Callable[[], float] = lambda: 0.0,
        timer_scheduler: Optional[Callable[[float, Callable[[], None]], Any]] = None,
    ):
        self.clock_now = clock_now
        self.timer_scheduler = timer_scheduler
        self.machines: Dict[str, EfsmInstance] = {}
        self.channels: Dict[str, Channel] = {}
        #: Flat view of ``channels.values()`` kept in sync by :meth:`connect`;
        #: lets the per-packet empty-channel check skip dict-view creation.
        self._channel_list: List[Channel] = []
        self.globals: Dict[str, Any] = {}
        self.results: List[FiringResult] = []
        self.deviations: List[FiringResult] = []
        self.attack_matches: List[FiringResult] = []
        #: Output events addressed to machines this system does not contain
        #: (outputs to the environment); kept for inspection, not delivered.
        self.undeliverable: List[Event] = []
        #: Hook invoked for every firing result (the vids analysis engine).
        self.on_result: Optional[Callable[[FiringResult], None]] = None
        #: Hook invoked for every routed output event ``c!event(x)`` —
        #: the δ-messages between machines — with the sending machine's
        #: name.  Also fires for outputs addressed to the environment
        #: (undeliverable here).  Used by call-scoped tracing.
        self.on_output: Optional[Callable[[str, Event], None]] = None

    # -- construction -------------------------------------------------------

    def add_machine(self, definition: Efsm) -> EfsmInstance:
        if definition.name in self.machines:
            raise DefinitionError(f"duplicate machine: {definition.name}")
        instance = EfsmInstance(
            definition,
            shared_globals=self.globals,
            clock_now=self.clock_now,
            timer_scheduler=self.timer_scheduler,
        )
        instance.on_timer_event = (
            lambda event, name=definition.name: self._deliver_timer(name, event)
        )
        self.machines[definition.name] = instance
        return instance

    def connect(self, sender: str, receiver: str) -> Channel:
        """Create (or return) the FIFO channel from sender to receiver."""
        name = channel_name(sender, receiver)
        if name not in self.channels:
            for machine in (sender, receiver):
                if machine not in self.machines:
                    raise DefinitionError(f"unknown machine: {machine}")
            channel = Channel(sender, receiver)
            self.channels[name] = channel
            self._channel_list.append(channel)
        return self.channels[name]

    # -- execution -----------------------------------------------------------

    def inject(self, machine: str, event: Event) -> List[FiringResult]:
        """Deliver a data-packet event, honouring sync-queue priority.

        Any synchronization events already queued are drained first; the
        data event is then fired; outputs it produces are routed onto their
        channels and drained in turn.  Returns every firing this caused.
        """
        fired: List[FiringResult] = []
        self._drain_channels(fired)
        self._fire(machine, event, fired)
        self._drain_channels(fired)
        return fired

    def _deliver_timer(self, machine: str, event: Event) -> List[FiringResult]:
        fired: List[FiringResult] = []
        self._fire(machine, event, fired)
        self._drain_channels(fired)
        return fired

    def _fire(self, machine: str, event: Event,
              accumulator: List[FiringResult]) -> None:
        instance = self.machines.get(machine)
        if instance is None:
            raise DefinitionError(f"unknown machine: {machine}")
        result = instance.deliver(event)
        accumulator.append(result)
        self._record(result)
        for output in result.outputs:
            self._route_output(machine, output)

    def _route_output(self, sender: str, event: Event) -> None:
        """Queue an output event onto its channel (created on demand)."""
        if event.channel is None:
            return
        hook = self.on_output
        if "->" in event.channel:
            channel = self.channels.get(event.channel)
            if channel is None:
                sender_name, _, receiver = event.channel.partition("->")
                if receiver not in self.machines:
                    # Output to the environment (no such machine here):
                    # record it rather than failing the transition.
                    if hook is not None:
                        hook(sender, event)
                    self.undeliverable.append(event)
                    return
                channel = self.connect(sender_name, receiver)
        else:
            if event.channel not in self.machines:
                if hook is not None:
                    hook(sender, event)
                self.undeliverable.append(event)
                return
            channel = self.connect(sender, event.channel)
            event = Event(event.name, event.args, channel=channel.name,
                          time=event.time)
        if hook is not None:
            hook(sender, event)
        channel.put(event)

    def _drain_channels(self, accumulator: List[FiringResult]) -> None:
        """Consume queued sync events until every channel is empty."""
        # Fast path for the steady state (nothing queued): a plain loop over
        # the flat channel list with C-level deque truthiness, run twice per
        # injected data packet.
        for channel in self._channel_list:
            if channel._queue:
                break
        else:
            return
        channels = self.channels
        progress = True
        while progress:
            progress = False
            for channel in list(channels.values()):
                while channel:
                    event = channel.get()
                    assert event is not None
                    self._fire(channel.receiver, event, accumulator)
                    progress = True

    def _record(self, result: FiringResult) -> None:
        self.results.append(result)
        if result.deviation:
            self.deviations.append(result)
        if result.attack:
            self.attack_matches.append(result)
        if self.on_result is not None:
            self.on_result(result)

    # -- checkpoint / restore --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of the whole call's state.

        Captures the shared globals once, every machine's
        :meth:`~repro.efsm.machine.EfsmInstance.snapshot`, and any sync
        events still queued on channels (normally empty at packet
        boundaries, but checkpoints must not assume it).
        """
        channels: Dict[str, List[Dict[str, Any]]] = {}
        for name, channel in self.channels.items():
            if channel._queue:
                channels[name] = [
                    {"name": event.name, "args": copy_state(dict(event.args)),
                     "time": event.time}
                    for event in channel._queue
                ]
        return {
            "globals": copy_state(self.globals),
            "machines": {name: instance.snapshot()
                         for name, instance in self.machines.items()},
            "channels": channels,
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Rebuild machine states, globals, and channels from a snapshot.

        The shared globals dict is mutated *in place* — every machine's
        :class:`~repro.efsm.machine.Variables` holds a reference to it, so
        identity must survive the restore.
        """
        self.globals.clear()
        self.globals.update(copy_state(snapshot["globals"]))
        for name, machine_snapshot in snapshot["machines"].items():
            instance = self.machines.get(name)
            if instance is None:
                raise DefinitionError(f"unknown machine: {name}")
            instance.restore(machine_snapshot)
        for channel in self._channel_list:
            channel._queue.clear()
        for name, events in snapshot.get("channels", {}).items():
            channel = self.channels.get(name)
            if channel is None:
                sender, _, receiver = name.partition("->")
                channel = self.connect(sender, receiver)
            for spec in events:
                channel.put(Event(spec["name"], copy_state(spec["args"]),
                                  channel=name, time=spec["time"]))

    # -- teardown / inspection -------------------------------------------------

    def cancel_all_timers(self) -> None:
        for instance in self.machines.values():
            instance.cancel_all_timers()

    @property
    def all_final(self) -> bool:
        """True when every machine rests in a final state (call can be
        deleted from the fact base, as Section 7.3 describes)."""
        return all(m.in_final_state for m in self.machines.values())

    def states(self) -> Dict[str, str]:
        return {name: m.state for name, m in self.machines.items()}
