"""Extended finite state machines (the paper's Section 4 formal model)."""

from .analysis import (
    attack_paths,
    event_coverage,
    reachable_states,
    summarize_machine,
)
from .channels import Channel, channel_name
from .dot import to_dot
from .errors import DefinitionError, EfsmError, NondeterminismError
from .events import TIMER_CHANNEL, Event
from .machine import (
    Efsm,
    EfsmInstance,
    FiringResult,
    Output,
    Transition,
    TransitionContext,
    Variables,
)
from .system import EfsmSystem, ManualClock

__all__ = [
    "Channel",
    "DefinitionError",
    "Efsm",
    "EfsmError",
    "EfsmInstance",
    "EfsmSystem",
    "Event",
    "FiringResult",
    "ManualClock",
    "NondeterminismError",
    "Output",
    "TIMER_CHANNEL",
    "Transition",
    "TransitionContext",
    "Variables",
    "attack_paths",
    "channel_name",
    "event_coverage",
    "reachable_states",
    "summarize_machine",
    "to_dot",
]
