"""Extended finite state machines (the paper's Section 4 formal model)."""

from .analysis import (
    attack_paths,
    coreachable_states,
    event_coverage,
    reachable_states,
    summarize_machine,
)
from .channels import Channel, channel_name, parse_channel
from .diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    diagnostics_to_dicts,
    errors_only,
    format_report,
    max_severity,
)
from .dot import to_dot
from .errors import (
    DefinitionError,
    EfsmError,
    NondeterminismError,
    SpecVerificationError,
)
from .events import TIMER_CHANNEL, Event
from .machine import (
    Efsm,
    EfsmInstance,
    FiringResult,
    Output,
    Transition,
    TransitionContext,
    Variables,
    probed_dispatch,
)
from .system import EfsmSystem, ManualClock, SystemTemplate
from .verify import RULES, verify_machine, verify_system

__all__ = [
    "Channel",
    "DefinitionError",
    "Diagnostic",
    "Efsm",
    "EfsmError",
    "EfsmInstance",
    "EfsmSystem",
    "Event",
    "FiringResult",
    "ManualClock",
    "NondeterminismError",
    "Output",
    "RULES",
    "Severity",
    "SpecVerificationError",
    "SystemTemplate",
    "TIMER_CHANNEL",
    "Transition",
    "TransitionContext",
    "Variables",
    "attack_paths",
    "channel_name",
    "coreachable_states",
    "count_by_severity",
    "diagnostics_to_dicts",
    "errors_only",
    "event_coverage",
    "format_report",
    "max_severity",
    "parse_channel",
    "probed_dispatch",
    "reachable_states",
    "summarize_machine",
    "to_dot",
    "verify_machine",
    "verify_system",
]
