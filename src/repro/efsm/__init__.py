"""Extended finite state machines (the paper's Section 4 formal model)."""

from .analysis import (
    attack_paths,
    coreachable_states,
    event_coverage,
    reachable_states,
    summarize_machine,
)
from .channels import Channel, channel_name, parse_channel
from .diagnostics import (
    Diagnostic,
    Severity,
    count_by_severity,
    diagnostics_to_dicts,
    errors_only,
    format_report,
    max_severity,
)
from .dot import to_dot
from .errors import (
    DefinitionError,
    EfsmError,
    NondeterminismError,
    SpecVerificationError,
)
from .events import TIMER_CHANNEL, Event
from .machine import (
    Efsm,
    EfsmInstance,
    FiringResult,
    Output,
    Transition,
    TransitionContext,
    Variables,
    probed_dispatch,
)
from .mine import (
    CallSequence,
    GuardSpec,
    MinedMachine,
    MiningCorpus,
    StepRecord,
    extract_corpus,
    mine,
    mine_machine,
    replay_sequence,
)
from .specdiff import specdiff
from .system import EfsmSystem, ManualClock, SystemTemplate
from .verify import RULES, verify_machine, verify_system

__all__ = [
    "CallSequence",
    "Channel",
    "DefinitionError",
    "Diagnostic",
    "Efsm",
    "EfsmError",
    "EfsmInstance",
    "EfsmSystem",
    "Event",
    "FiringResult",
    "GuardSpec",
    "ManualClock",
    "MinedMachine",
    "MiningCorpus",
    "StepRecord",
    "NondeterminismError",
    "Output",
    "RULES",
    "Severity",
    "SpecVerificationError",
    "SystemTemplate",
    "TIMER_CHANNEL",
    "Transition",
    "TransitionContext",
    "Variables",
    "attack_paths",
    "channel_name",
    "coreachable_states",
    "count_by_severity",
    "diagnostics_to_dicts",
    "errors_only",
    "event_coverage",
    "extract_corpus",
    "format_report",
    "max_severity",
    "mine",
    "mine_machine",
    "parse_channel",
    "probed_dispatch",
    "reachable_states",
    "replay_sequence",
    "specdiff",
    "summarize_machine",
    "to_dot",
    "verify_machine",
    "verify_system",
]
