"""specdiff: structural diff of mined machines against the specifications.

A mined machine (:mod:`repro.efsm.mine`) is evidence of what monitored
calls *actually did*; the hand-written Figure-5/6 machines are what the
specification *says* they may do.  Diffing the two finds spec gaps that
static lint (``speclint``) cannot see, because they only show up against
real traffic:

- **missing-transition** (ERROR): traces exercised an (state, event,
  channel) the spec has no transition for — observed behaviour the
  specification would call a deviation;
- **guard-disagreement** (WARNING): the spec has a matching transition but
  its guard rejects some (or all) recorded samples, or the guard accepts
  them into a different target state than the one actually recorded;
- **unexercised-transition** (INFO): spec transitions no training trace
  ever took (expected for attack signatures over a benign corpus);
- **unvisited-state** (INFO): spec states the corpus never reached.

The diff never aligns mined states with spec states structurally — every
training observation carries the spec machine's *recorded* state at firing
time, so spec guards are probed exactly where the event actually arrived,
with the recorded argument vector and accumulated variable valuation
(``VidsConfig.trace_variables``).  Without recorded arguments the diff
degrades to name-level structural checks and skips guard probing.

Findings reuse the speclint :class:`Diagnostic`/:func:`format_report`
machinery, so the ``specdiff`` CLI renders and exits like ``speclint``.
See docs/MINING.md for the rule catalog.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from .diagnostics import Diagnostic, Severity
from .events import Event
from .machine import Efsm, EfsmInstance, Transition, TransitionContext
from .mine import MinedMachine, Observation

__all__ = ["specdiff", "DEFAULT_SAMPLES_PER_GROUP"]

#: Recorded observations probed per (state, event, channel) group.
DEFAULT_SAMPLES_PER_GROUP = 5


def _probe_enabled(spec: Efsm, state: str, event: Event,
                   valuation: Mapping[str, Any],
                   candidates: List[Transition]) -> Optional[Transition]:
    """First spec transition enabled at ``state`` for one recorded sample.

    Mirrors :meth:`Efsm.check_determinism`'s probing: a throwaway instance
    pinned to the recorded state, the recorded valuation split into locals
    vs globals, predicates evaluated without firing actions.  A guard that
    raises on the (bounded, possibly partial) recorded data counts as
    not-enabled rather than crashing the diff.
    """
    probe = EfsmInstance(spec, clock_now=lambda: event.time or 0.0)
    probe.state = state
    local = probe.variables.local
    for name, value in valuation.items():
        if name in local:
            local[name] = value
        else:
            probe.variables.globals[name] = value
    ctx = TransitionContext(probe, event)
    for transition in candidates:
        try:
            if transition.enabled(ctx):
                return transition
        except Exception:
            continue
    return None


def _sample_args(observations: List[Observation]) -> List[Dict[str, Any]]:
    return [observation.args for observation in observations[:3]]


def specdiff(mined: MinedMachine, spec: Efsm,
             samples_per_group: int = DEFAULT_SAMPLES_PER_GROUP
             ) -> List[Diagnostic]:
    """Diff one mined machine against its specification machine."""
    # Group every training observation by where it actually fired in the
    # spec machine: (recorded spec state, event, channel).
    groups: Dict[Tuple[str, str, Optional[str]], List[Observation]] = {}
    for key, observations in mined.observations.items():
        _, event_name, channel, _ = key
        for observation in observations:
            group_key = (observation.spec_from, event_name, channel)
            groups.setdefault(group_key, []).append(observation)

    diagnostics: List[Diagnostic] = []
    matched: set = set()
    visited: set = set()

    for (state, event_name, channel), observations in sorted(
            groups.items(), key=lambda item: (item[0][0], item[0][1],
                                              item[0][2] or "")):
        visited.add(state)
        for observation in observations:
            if observation.spec_to:
                visited.add(observation.spec_to)
        if state not in spec.states:
            diagnostics.append(Diagnostic(
                "missing-transition", Severity.ERROR,
                f"traces record firings in state {state!r} which "
                f"{spec.name!r} does not define",
                machine=spec.name, state=state, event=event_name,
                channel=channel,
                data={"samples": len(observations)},
                hint="the spec and the traced deployment disagree about "
                     "the state space; re-mine against matching specs"))
            continue
        candidates = [t for t in spec.transitions_from(state, event_name)
                      if t.channel == channel]
        if not candidates:
            diagnostics.append(Diagnostic(
                "missing-transition", Severity.ERROR,
                f"{len(observations)} recorded firing(s) of {event_name!r} "
                f"in state {state!r}"
                + (f" on channel {channel!r}" if channel else "")
                + f" have no matching transition in {spec.name!r}",
                machine=spec.name, state=state, event=event_name,
                channel=channel,
                data={"samples": len(observations),
                      "example_args": _sample_args(observations)},
                hint="observed behaviour the specification would flag as a "
                     "deviation: add the transition or investigate the "
                     "traffic"))
            continue
        probeable = [o for o in observations if o.args or o.valuation]
        if not probeable:
            # trace_variables was off: structural name-level match only.
            matched.update(id(t) for t in candidates)
            continue
        samples = probeable[:samples_per_group]
        accepted = 0
        mismatched: List[Observation] = []
        for observation in samples:
            event = Event(event_name, observation.args, channel=channel,
                          time=observation.time)
            enabled = _probe_enabled(spec, state, event,
                                     observation.valuation, candidates)
            if enabled is None:
                continue
            accepted += 1
            matched.add(id(enabled))
            if observation.spec_to and enabled.target != observation.spec_to:
                mismatched.append(observation)
        if accepted == 0:
            diagnostics.append(Diagnostic(
                "guard-disagreement", Severity.WARNING,
                f"{spec.name!r} has transition(s) for {event_name!r} in "
                f"state {state!r} but their guards reject all "
                f"{len(samples)} recorded sample(s)",
                machine=spec.name, state=state, event=event_name,
                channel=channel,
                transition=candidates[0].describe(),
                data={"samples": len(samples),
                      "example_args": _sample_args(samples)},
                hint="the spec guard and the recorded traffic disagree; "
                     "check the guard's argument fields against the "
                     "traced args/vars"))
        elif accepted < len(samples):
            diagnostics.append(Diagnostic(
                "guard-disagreement", Severity.WARNING,
                f"guards of {spec.name!r} accept only {accepted} of "
                f"{len(samples)} recorded sample(s) of {event_name!r} in "
                f"state {state!r}",
                machine=spec.name, state=state, event=event_name,
                channel=channel,
                data={"accepted": accepted, "samples": len(samples),
                      "example_args": _sample_args(samples)},
                hint="partial guard coverage: some recorded firings would "
                     "deviate under the current spec"))
        if mismatched:
            diagnostics.append(Diagnostic(
                "guard-disagreement", Severity.WARNING,
                f"probing {event_name!r} in state {state!r} selects a "
                f"different target than the {len(mismatched)} recorded "
                f"firing(s) (recorded -> {mismatched[0].spec_to!r})",
                machine=spec.name, state=state, event=event_name,
                channel=channel,
                data={"mismatched": len(mismatched),
                      "example_args": _sample_args(mismatched)},
                hint="guard overlap or bounded-valuation divergence; "
                     "verify the guard's variable dependencies"))

    for transition in spec.transitions:
        if id(transition) in matched:
            continue
        is_attack = (transition.attack
                     or transition.target in spec.attack_states)
        diagnostics.append(Diagnostic(
            "unexercised-transition", Severity.INFO,
            f"spec transition {transition.describe()} was never exercised "
            f"by the training corpus"
            + (" (attack signature: expected on benign traffic)"
               if is_attack else ""),
            machine=spec.name, state=transition.source,
            event=transition.event_name, channel=transition.channel,
            transition=transition.describe(),
            hint="" if is_attack else
                 "widen the corpus or confirm the path is reachable "
                 "in deployment"))

    for state in sorted(set(spec.states) - visited):
        is_attack = state in spec.attack_states
        diagnostics.append(Diagnostic(
            "unvisited-state", Severity.INFO,
            f"spec state {state!r} was never reached by the training corpus"
            + (" (attack state: expected on benign traffic)"
               if is_attack else ""),
            machine=spec.name, state=state))

    diagnostics.sort(key=lambda d: (-int(d.severity), d.rule,
                                    d.state or "", d.event or ""))
    return diagnostics
