"""EFSM model exceptions."""

from __future__ import annotations

__all__ = ["EfsmError", "DefinitionError", "NondeterminismError"]


class EfsmError(Exception):
    """Base class for EFSM model errors."""


class DefinitionError(EfsmError):
    """A machine definition is malformed (unknown state, duplicate, ...)."""


class NondeterminismError(EfsmError):
    """Two transitions from the same configuration are simultaneously enabled.

    Definition 1 requires predicates on same (state, event) transitions to be
    mutually disjoint for the EFSM to be deterministic; this error is raised
    when an execution or a determinism check finds an overlap.
    """
