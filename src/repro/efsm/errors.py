"""EFSM model exceptions."""

from __future__ import annotations

__all__ = ["EfsmError", "DefinitionError", "NondeterminismError",
           "SpecVerificationError"]


class EfsmError(Exception):
    """Base class for EFSM model errors."""


class DefinitionError(EfsmError):
    """A machine definition is malformed (unknown state, duplicate, ...)."""


class NondeterminismError(EfsmError):
    """Two transitions from the same configuration are simultaneously enabled.

    Definition 1 requires predicates on same (state, event) transitions to be
    mutually disjoint for the EFSM to be deterministic; this error is raised
    when an execution or a determinism check finds an overlap.
    """


class SpecVerificationError(EfsmError):
    """Static spec verification found ERROR-severity findings.

    Raised by the vids registration-time gate (``VidsConfig.verify_specs``)
    so a broken specification fails fast instead of silently weakening
    detection.  ``diagnostics`` carries the offending findings.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
