"""Command-line interface: ``vids-repro`` (or ``python -m repro.cli``).

Subcommands:

- ``scenario`` — run the Section-7 experiment (paired with/without vids) and
  print the overhead table; optionally export the figure CSVs;
- ``attack-matrix`` — inject every threat-model attack and print the
  detection scoreboard;
- ``machines`` — print structural summaries (or Graphviz dot) of the vids
  protocol state machines;
- ``speclint`` — statically verify the machine specifications (per-machine
  rules plus cross-machine channel/deadlock analysis; docs/SPECCHECK.md)
  and exit non-zero on ERROR findings;
- ``perf`` — cProfile a synthetic N-call SIP+RTP workload through the full
  vids pipeline and print the top-K cumulative hotspots
  (docs/PERFORMANCE.md);
- ``trace`` — run a short scenario with a seeded attack under full
  observability and print the victim call's forensic timeline (classifier
  verdict → EFSM firings and δ channel messages → alert), with optional
  JSONL trace and Prometheus metrics export (docs/OBSERVABILITY.md);
- ``serve`` — bind real UDP sockets (passive tap) and feed received SIP/RTP
  traffic through the pipeline live, with graceful SIGTERM drain and an
  optional Prometheus metrics endpoint (docs/DEPLOYMENT.md);
- ``replay`` — decode a pcap/pcapng capture with the dependency-free codec
  and analyse it offline through the identical ingestion path
  (docs/DEPLOYMENT.md "Forensic replay").
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vids-repro",
        description=("Reproduction of 'VoIP Intrusion Detection Through "
                     "Interacting Protocol State Machines' (DSN 2006)"))
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser(
        "scenario", help="run the paired with/without-vids experiment")
    scenario.add_argument("--horizon", type=float, default=1800.0,
                          help="simulated workload seconds (default 1800)")
    scenario.add_argument("--seed", type=int, default=3)
    scenario.add_argument("--phones", type=int, default=10,
                          help="phones per enterprise network")
    scenario.add_argument("--figures", metavar="DIR", default=None,
                          help="also export Figure 8/9/10 CSVs to DIR")

    matrix = sub.add_parser(
        "attack-matrix", help="inject every attack and report detection")
    matrix.add_argument("--seed", type=int, default=11)

    machines = sub.add_parser(
        "machines", help="describe the vids protocol state machines")
    machines.add_argument("--dot", action="store_true",
                          help="emit Graphviz dot instead of summaries")

    speclint = sub.add_parser(
        "speclint",
        help="statically verify the EFSM specifications (spec-lint)")
    speclint.add_argument("--json", action="store_true",
                          help="emit findings as a JSON document")
    speclint.add_argument("--strict", action="store_true",
                          help="exit non-zero on WARNING findings too")
    speclint.add_argument("--min-severity", choices=("info", "warning",
                                                     "error"),
                          default="info",
                          help="lowest severity to report (default info)")
    speclint.add_argument("--no-cross-protocol", action="store_true",
                          help="lint the cross_protocol=False ablation "
                               "machines instead")
    speclint.add_argument("--dot", metavar="DIR", default=None,
                          help="write per-machine Graphviz dot annotated "
                               "with the findings to DIR")

    mine = sub.add_parser(
        "mine",
        help="learn EFSMs from a trace JSONL export (docs/MINING.md)")
    mine.add_argument("--jsonl", metavar="PATH", required=True,
                      help="trace export to learn from "
                           "(trace --trace-variables --jsonl PATH)")
    mine.add_argument("--machine", default=None,
                      help="mine only this machine (default: every machine "
                           "with training sequences)")
    mine.add_argument("--k", type=int, default=2,
                      help="k-tails merging depth (default 2)")
    mine.add_argument("--include-attacks", action="store_true",
                      help="keep calls with attack firings in the training "
                           "corpus (default: exclude them)")
    mine.add_argument("--json", action="store_true",
                      help="emit machine and corpus summaries as JSON")
    mine.add_argument("--dot", metavar="DIR", default=None,
                      help="write each mined machine as Graphviz dot to DIR")
    mine.add_argument("--strict", action="store_true",
                      help="exit non-zero when any training sequence fails "
                           "to replay or the corpus had truncated calls")

    specdiff = sub.add_parser(
        "specdiff",
        help="diff mined machines against the hand-written specs")
    specdiff.add_argument("--jsonl", metavar="PATH", required=True,
                          help="trace export to mine the learned side from")
    specdiff.add_argument("--machine", default=None,
                          choices=("sip", "rtp"),
                          help="diff only this machine (default: both)")
    specdiff.add_argument("--k", type=int, default=2,
                          help="k-tails merging depth (default 2)")
    specdiff.add_argument("--json", action="store_true",
                          help="emit findings as a JSON document")
    specdiff.add_argument("--strict", action="store_true",
                          help="exit non-zero on WARNING findings too")
    specdiff.add_argument("--min-severity", choices=("info", "warning",
                                                     "error"),
                          default="info",
                          help="lowest severity to report (default info)")
    specdiff.add_argument("--no-cross-protocol", action="store_true",
                          help="diff against the cross_protocol=False "
                               "ablation machines instead")

    codelint = sub.add_parser(
        "codelint",
        help="statically verify implementation invariants (checkpoint "
             "coverage, guard purity, shard isolation)")
    codelint.add_argument("--json", action="store_true",
                          help="emit findings as a JSON document")
    codelint.add_argument("--strict", action="store_true",
                          help="exit non-zero on new WARNING findings too")
    codelint.add_argument("--min-severity", choices=("info", "warning",
                                                     "error"),
                          default="info",
                          help="lowest severity to report (default info)")
    codelint.add_argument("--baseline", metavar="FILE", default=None,
                          help="baseline JSON of accepted findings "
                               "(default tools/codelint_baseline.json next "
                               "to the repo, if present)")
    codelint.add_argument("--no-baseline", action="store_true",
                          help="ignore any baseline: every finding counts")
    codelint.add_argument("--write-baseline", action="store_true",
                          help="accept all current findings into the "
                               "baseline file and exit 0")
    codelint.add_argument("--root", metavar="DIR", default=None,
                          help="package source root to analyze (default: "
                               "the installed repro package)")

    perf = sub.add_parser(
        "perf", help="profile a synthetic workload; print the hotspots")
    perf.add_argument("--calls", type=int, default=200,
                      help="calls to set up and analyze (default 200)")
    perf.add_argument("--rtp-per-call", type=int, default=50,
                      help="RTP packets injected per call (default 50)")
    perf.add_argument("--top", type=int, default=25,
                      help="hotspot rows to print (default 25)")
    perf.add_argument("--sort", choices=("cumulative", "tottime"),
                      default="cumulative",
                      help="hotspot sort order (default cumulative)")
    perf.add_argument("--raw", action="store_true",
                      help="also print the raw pstats table (the default "
                           "output is the stage rollup + stage-tagged "
                           "hotspot listing)")
    perf.add_argument("--shards", type=int, default=1,
                      help="profile through a ShardedVids facade with N "
                           "analysis shards (default 1: plain Vids; "
                           "docs/SCALING.md)")
    perf.add_argument("--supervise", action="store_true",
                      help="put the shards under a ShardSupervisor with "
                           "checkpointing on (docs/ROBUSTNESS.md "
                           "'Supervision & failover')")
    perf.add_argument("--checkpoint-cadence", type=int, default=None,
                      metavar="N",
                      help="with --supervise: checkpoint every N packets "
                           "per member (default from ClusterConfig)")

    trace = sub.add_parser(
        "trace",
        help="run a seeded attack scenario; print the forensic timeline")
    trace.add_argument("--attack", default="bye",
                       choices=("bye", "bye-spoof", "cancel", "hijack",
                                "toll-fraud", "media-spam", "rtp-flood",
                                "invite-flood", "none"),
                       help="attack to seed into the workload (default bye)")
    trace.add_argument("--seed", type=int, default=11)
    trace.add_argument("--horizon", type=float, default=150.0,
                       help="simulated workload seconds (default 150)")
    trace.add_argument("--call-id", default=None,
                       help="call to render (default: the attack's victim, "
                            "else the first alerted call)")
    trace.add_argument("--all-calls", action="store_true",
                       help="render the full timeline, not one call")
    trace.add_argument("--limit", type=int, default=None,
                       help="print at most the last N timeline lines")
    trace.add_argument("--capacity", type=int, default=262_144,
                       help="trace ring-buffer capacity in events "
                            "(default 262144 — wide enough to keep the "
                            "whole default scenario)")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="export the raw trace events as JSON Lines")
    trace.add_argument("--mean-duration", type=float, default=400.0,
                       help="mean call duration in seconds (default 400; "
                            "lower it below the horizon so teardown paths "
                            "appear in mined corpora)")
    trace.add_argument("--trace-variables", action="store_true",
                       help="attach bounded args/vars snapshots to fire "
                            "events (feeds 'mine' guard synthesis; "
                            "docs/MINING.md)")
    trace.add_argument("--metrics", metavar="PATH", default=None,
                       help="export the metrics registry as Prometheus text"
                            " ('-' for stdout)")
    trace.add_argument("--profile", action="store_true",
                       help="enable per-stage profiling and print the report")
    trace.add_argument("--shards", type=int, default=1,
                       help="run the scenario's IDS as a ShardedVids facade "
                            "with N analysis shards (default 1; "
                            "docs/SCALING.md)")
    trace.add_argument("--supervise", action="store_true",
                       help="supervise the shards (checkpoint/restore, "
                            "health-checked failover, backpressure; "
                            "docs/ROBUSTNESS.md 'Supervision & failover')")
    trace.add_argument("--kill-shard", type=int, default=None, metavar="I",
                       help="with --supervise: kill shard I mid-scenario "
                            "(at half the horizon) and let the supervisor "
                            "restore it from checkpoint")

    serve = sub.add_parser(
        "serve",
        help="feed the IDS from live UDP sockets (passive tap; "
             "docs/DEPLOYMENT.md)")
    serve.add_argument("--host", default="0.0.0.0",
                       help="address to bind (default 0.0.0.0)")
    serve.add_argument("--sip-port", type=int, default=5060,
                       help="UDP port to tap for SIP (default 5060; 0 binds "
                            "an ephemeral port and prints it)")
    serve.add_argument("--rtp-range", metavar="LO-HI", default=None,
                       help="inclusive UDP port range to tap for RTP/RTCP "
                            "(e.g. 20000-20019); default: none")
    serve.add_argument("--shards", type=int, default=1,
                       help="analysis shards (default 1; docs/SCALING.md)")
    serve.add_argument("--supervise", action="store_true",
                       help="supervise the shards (checkpoint/restore, "
                            "failover; docs/ROBUSTNESS.md)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve the Prometheus exposition on this TCP "
                            "port (0 for ephemeral; default: off)")
    serve.add_argument("--flush-interval", type=float, default=0.05,
                       help="seconds between batch flushes into the "
                            "pipeline (default 0.05)")
    serve.add_argument("--max-runtime", type=float, default=None,
                       metavar="SEC",
                       help="shut down (with drain) after SEC wall seconds "
                            "— for smoke tests; default: run until "
                            "SIGTERM/SIGINT")
    serve.add_argument("--metrics", metavar="PATH", default=None,
                       help="write the final Prometheus exposition to PATH "
                            "on exit ('-' for stdout)")

    replay = sub.add_parser(
        "replay",
        help="analyse a pcap/pcapng capture offline (docs/DEPLOYMENT.md)")
    replay.add_argument("--pcap", metavar="FILE", required=True,
                        help="pcap or pcapng capture to decode and analyse")
    replay.add_argument("--shards", type=int, default=1,
                        help="analysis shards (default 1)")
    replay.add_argument("--supervise", action="store_true",
                        help="run the shards under a supervisor")
    replay.add_argument("--no-rebase", action="store_true",
                        help="keep original timestamps instead of rebasing "
                             "epoch captures to t=0")
    replay.add_argument("--json", action="store_true",
                        help="emit decode stats, counters, and alerts as "
                             "one JSON document")
    replay.add_argument("--metrics", metavar="PATH", default=None,
                        help="export the metrics registry as Prometheus "
                             "text ('-' for stdout)")

    return parser


def _cmd_scenario(args) -> int:
    from .analysis import export_all, format_table
    from .telephony import (ScenarioParams, TestbedParams, WorkloadParams,
                            run_scenario)

    workload = WorkloadParams(horizon=args.horizon)
    testbed = TestbedParams(seed=args.seed, phones_per_network=args.phones)
    print(f"running paired scenario ({args.horizon:.0f} s simulated, "
          f"seed {args.seed})...", file=sys.stderr)
    on = run_scenario(ScenarioParams(testbed=testbed, workload=workload,
                                     with_vids=True))
    off = run_scenario(ScenarioParams(testbed=testbed, workload=workload,
                                      with_vids=False))
    rows = [
        ("calls placed / answered",
         f"{off.placed_calls} / {off.answered_calls}",
         f"{on.placed_calls} / {on.answered_calls}"),
        ("mean setup delay",
         f"{off.mean_setup_delay * 1000:.1f} ms",
         f"{on.mean_setup_delay * 1000:.1f} ms"),
        ("mean RTP delay",
         f"{off.mean_rtp_delay * 1000:.2f} ms",
         f"{on.mean_rtp_delay * 1000:.2f} ms"),
        ("mean delay variation",
         f"{off.mean_rtp_delay_variation:.6f} s",
         f"{on.mean_rtp_delay_variation:.6f} s"),
        ("mean MOS (E-model)",
         f"{off.mean_mos:.2f}", f"{on.mean_mos:.2f}"),
        ("vids CPU", f"{off.cpu_utilization:.2%}",
         f"{on.cpu_utilization:.2%}"),
        ("alerts", "-", str(on.alerts_by_type() or 0)),
    ]
    print(format_table(("metric", "without vids", "with vids"), rows))
    if args.figures:
        paths = export_all(on, off, args.figures)
        for name, path in sorted(paths.items()):
            print(f"wrote {name}: {path}")
    return 0


def _cmd_attack_matrix(args) -> int:
    from .analysis import format_table
    from .attacks import (ByeTeardownAttack, CallHijackAttack,
                          CancelDosAttack, DrdosReflectionAttack,
                          InviteFloodAttack, MediaSpamAttack,
                          RegistrationHijackAttack, RtpFloodAttack,
                          TollFraudAttack)
    from .telephony import (ScenarioParams, TestbedParams, WorkloadParams,
                            run_scenario)

    workload = WorkloadParams(mean_interarrival=25.0, mean_duration=400.0,
                              horizon=150.0)
    attacks = [
        InviteFloodAttack(40.0, count=20),
        ByeTeardownAttack(40.0, spoof="none"),
        ByeTeardownAttack(40.0, spoof="peer"),
        CancelDosAttack(40.0),
        CallHijackAttack(40.0),
        TollFraudAttack(40.0),
        MediaSpamAttack(40.0),
        RtpFloodAttack(40.0, mode="flood"),
        RtpFloodAttack(40.0, mode="codec"),
        DrdosReflectionAttack(40.0, count=20),
        RegistrationHijackAttack(40.0),
    ]
    rows = []
    detected = 0
    for attack in attacks:
        result = run_scenario(ScenarioParams(
            testbed=TestbedParams(seed=args.seed, phones_per_network=4),
            workload=workload, with_vids=True, attacks=(attack,),
            drain_time=90.0))
        kinds = sorted({a.attack_type.value for a in result.vids.alerts})
        ok = attack.launched and bool(kinds)
        detected += ok
        label = attack.name
        if hasattr(attack, "mode"):
            label += f" ({attack.mode})"
        elif hasattr(attack, "spoof"):
            label += f" (spoof={attack.spoof})"
        rows.append((label, "yes" if attack.launched else "NO TARGET",
                     ", ".join(kinds) if kinds else "NOT DETECTED"))
        print(f"  {label}: {'detected' if ok else 'MISSED'}",
              file=sys.stderr)
    print(format_table(("attack", "launched", "alerts"), rows))
    print(f"\ndetected {detected}/{len(attacks)}")
    return 0 if detected == len(attacks) else 1


def _cmd_machines(args) -> int:
    from .efsm import summarize_machine, to_dot
    from .vids import build_rtp_machine, build_sip_machine
    from .vids.patterns import build_invite_flood_machine, \
        build_media_spam_machine

    machines = [
        build_sip_machine(),
        build_rtp_machine(),
        build_invite_flood_machine(5, 1.0),
        build_media_spam_machine(50, 160_000),
    ]
    for machine in machines:
        if args.dot:
            print(to_dot(machine))
        else:
            print(summarize_machine(machine))
        print()
    return 0


def _cmd_speclint(args) -> int:
    import json
    import os

    from .efsm.diagnostics import (Severity, count_by_severity,
                                   diagnostics_to_dicts, format_report)
    from .efsm.dot import to_dot
    from .vids.config import DEFAULT_CONFIG
    from .vids.speclint import verify_vids_specs

    config = DEFAULT_CONFIG
    if args.no_cross_protocol:
        config = config.with_overrides(cross_protocol=False)
    diagnostics = verify_vids_specs(config)
    min_severity = {"info": Severity.INFO, "warning": Severity.WARNING,
                    "error": Severity.ERROR}[args.min_severity]
    if args.json:
        counts = count_by_severity(diagnostics)
        print(json.dumps({
            "findings": diagnostics_to_dicts(
                d for d in diagnostics if d.severity >= min_severity),
            "counts": {str(sev): n for sev, n in sorted(counts.items())},
        }, indent=2, sort_keys=True))
    else:
        print(format_report(diagnostics, min_severity=min_severity))
    if args.dot:
        from .vids.patterns import (build_invite_flood_machine,
                                    build_media_spam_machine)
        from .vids.rtp_machine import build_rtp_machine
        from .vids.sip_machine import build_sip_machine
        os.makedirs(args.dot, exist_ok=True)
        machines = [
            build_sip_machine(config),
            build_rtp_machine(config),
            build_invite_flood_machine(config.invite_flood_threshold,
                                       config.invite_flood_window),
            build_media_spam_machine(config.media_spam_seq_gap,
                                     config.media_spam_ts_gap),
        ]
        for machine in machines:
            path = os.path.join(args.dot, f"{machine.name}.dot")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_dot(machine, diagnostics=diagnostics))
                handle.write("\n")
            print(f"wrote {path}", file=sys.stderr)
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if any(d.severity >= threshold for d in diagnostics) else 0


def _cmd_codelint(args) -> int:
    """Run the static implementation-invariant analyzer (codelint).

    Exit status is driven by *new* findings only: anything recorded in the
    committed baseline file is reported but tolerated, so CI fails when a
    change introduces a finding, not because history had one.
    """
    import json
    from pathlib import Path

    from .analysis.codecheck import (analyze, fingerprint, load_baseline,
                                     partition_findings, write_baseline)
    from .efsm.diagnostics import (Severity, count_by_severity,
                                   diagnostics_to_dicts, format_report)

    root = Path(args.root) if args.root else None
    diagnostics = analyze(root=root)

    baseline_path = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        else:
            # repo layout: src/repro/cli.py -> <repo>/tools/...
            candidate = (Path(__file__).resolve().parents[2]
                         / "tools" / "codelint_baseline.json")
            if candidate.is_file() or args.write_baseline:
                baseline_path = candidate
    if args.write_baseline:
        if baseline_path is None:
            print("codelint: --write-baseline needs --baseline FILE",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, diagnostics)
        print(f"codelint: wrote {len(diagnostics)} finding(s) to "
              f"{baseline_path}")
        return 0
    baseline = load_baseline(baseline_path) if baseline_path else {}
    new, accepted, stale = partition_findings(diagnostics, baseline)

    min_severity = {"info": Severity.INFO, "warning": Severity.WARNING,
                    "error": Severity.ERROR}[args.min_severity]
    if args.json:
        counts = count_by_severity(diagnostics)
        print(json.dumps({
            "findings": diagnostics_to_dicts(
                d for d in diagnostics if d.severity >= min_severity),
            "new": [fingerprint(d) for d in new],
            "baselined": [fingerprint(d) for d in accepted],
            "stale_baseline": stale,
            "counts": {str(sev): n for sev, n in sorted(counts.items())},
        }, indent=2, sort_keys=True))
    else:
        print(format_report(diagnostics, min_severity=min_severity,
                            label="codelint"))
        if accepted:
            print(f"codelint: {len(accepted)} finding(s) accepted by "
                  f"baseline {baseline_path}")
        for print_ in stale:
            print(f"codelint: stale baseline entry (no longer fires): "
                  f"{print_}", file=sys.stderr)
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if any(d.severity >= threshold for d in new) else 0


#: Pipeline stages for the ``perf`` rollup, in datagram order.  A profiled
#: function belongs to the first stage whose path fragment matches; stdlib
#: frames and the synthetic workload itself land in "harness/other".
_PERF_STAGES = (
    ("classify", ("vids/classifier.py",)),
    ("sip-parse", ("sip/message.py", "sip/headers.py", "sip/uri.py",
                   "sip/sdp.py", "sip/constants.py", "sip/errors.py")),
    ("rtp-parse", ("rtp/",)),
    ("distribute", ("vids/distributor.py",)),
    ("state-machines", ("vids/sip_machine.py", "vids/rtp_machine.py",
                        "efsm/")),
    ("factbase", ("vids/factbase.py",)),
    ("flood-tracking", ("vids/patterns/",)),
    ("engine", ("vids/ids.py", "vids/engine.py", "vids/alerts.py",
                "vids/metrics.py")),
    ("sharding", ("vids/sharding.py", "vids/cluster.py", "vids/sync.py")),
)


def _perf_stage_of(filename: str) -> str:
    path = filename.replace("\\", "/")
    for stage, fragments in _PERF_STAGES:
        if any(f"repro/{fragment}" in path for fragment in fragments):
            return stage
    return "harness/other"


def _print_stage_hotspots(profile, top: int, sort: str) -> None:
    """Per-stage rollup + stage-tagged hotspot rows from a cProfile run.

    Own (tottime) seconds sum to the total runtime, so the rollup answers
    "which stage is the bottleneck" directly; the hotspot rows below it
    answer "which function inside that stage" without a raw pstats dump.
    """
    import pstats

    entries = []  # (stage, func label, primitive calls, own_s, cum_s)
    own_per_stage: dict = {}
    for (filename, line, funcname), (calls, _nc, tottime, cumtime, _callers) \
            in pstats.Stats(profile).stats.items():
        stage = _perf_stage_of(filename)
        base = filename.replace("\\", "/").rsplit("/", 1)[-1]
        label = funcname if base == "~" else f"{funcname} ({base}:{line})"
        entries.append((stage, label, calls, tottime, cumtime))
        own_per_stage[stage] = own_per_stage.get(stage, 0.0) + tottime

    total = sum(own_per_stage.values()) or 1.0
    print("stage rollup (own time; sums to total):")
    for stage, seconds in sorted(own_per_stage.items(),
                                 key=lambda item: -item[1]):
        print(f"  {stage:<16} {seconds:8.3f}s  {seconds / total:6.1%}")

    key = 4 if sort == "cumulative" else 3
    entries.sort(key=lambda entry: -entry[key])
    order = "cumulative" if sort == "cumulative" else "own"
    print(f"\ntop {top} hotspots by {order} time:")
    print(f"  {'cum_s':>8}  {'own_s':>8}  {'calls':>9}  "
          f"{'stage':<16} function")
    for stage, label, calls, own, cum in entries[:top]:
        print(f"  {cum:8.3f}  {own:8.3f}  {calls:9d}  {stage:<16} {label}")


def _cmd_perf(args) -> int:
    """cProfile the packet pipeline on a synthetic SIP+RTP workload.

    The workload mirrors the throughput benchmarks: each synthetic call is
    one INVITE-with-SDP through the classifier/distributor/SIP machine,
    followed by a burst of in-session RTP packets through the media fast
    path — so the printed hotspots are the ones that matter for the
    steady-state analysis rate.
    """
    import cProfile
    import pstats

    from .efsm import ManualClock
    from .netsim import Datagram, Endpoint
    from .rtp import RtpPacket
    from .sip import SipRequest
    from .vids import (DEFAULT_CLUSTER_CONFIG, DEFAULT_CONFIG, ShardedVids,
                       SupervisedCluster, Vids)

    sdp = ("v=0\r\no=- 1 1 IN IP4 10.1.0.11\r\ns=c\r\n"
           "c=IN IP4 10.1.0.11\r\nt=0 0\r\nm=audio {port} RTP/AVP 18\r\n"
           "a=rtpmap:18 G729/8000\r\n")
    clock = ManualClock()
    if args.supervise:
        cluster = DEFAULT_CLUSTER_CONFIG
        if args.checkpoint_cadence is not None:
            cluster = cluster.with_overrides(
                checkpoint_cadence=args.checkpoint_cadence)
        vids = SupervisedCluster(shards=max(args.shards, 1),
                                 config=DEFAULT_CONFIG,
                                 clock_now=clock.now,
                                 timer_scheduler=clock.schedule,
                                 cluster=cluster)
    elif args.shards > 1:
        vids = ShardedVids(shards=args.shards, config=DEFAULT_CONFIG,
                           clock_now=clock.now,
                           timer_scheduler=clock.schedule)
    else:
        vids = Vids(config=DEFAULT_CONFIG, clock_now=clock.now,
                    timer_scheduler=clock.schedule)

    def workload() -> None:
        # Each call: one INVITE-with-SDP, then the RTP burst through the
        # batched ingestion path (the sharded facade's bulk entry point;
        # for plain Vids it is the same per-packet loop).
        for index in range(args.calls):
            port = 20_000 + 2 * (index % 1000)
            invite = SipRequest("INVITE", "sip:bob@b.example.com",
                                body=sdp.format(port=port))
            invite.set("Via",
                       "SIP/2.0/UDP 10.1.0.1:5060;branch=z9hG4bKp%d" % index)
            invite.set("From", "<sip:alice@a.example.com>;tag=pf%d" % index)
            invite.set("To", "<sip:u%d@b.example.com>" % index)
            invite.set("Call-ID", f"perf-{index}@cli")
            invite.set("CSeq", "1 INVITE")
            invite.set("Contact", "<sip:alice@10.1.0.11:5060>")
            invite.set("Content-Type", "application/sdp")
            clock.advance(0.01)
            vids.process(Datagram(Endpoint("10.1.0.1", 5060),
                                  Endpoint("10.2.0.1", 5060),
                                  invite.serialize()), clock.now())
            base = clock.now()
            burst = []
            for seq in range(args.rtp_per_call):
                packet = RtpPacket(18, seq + 1, (seq + 1) * 160,
                                   0xAA00 + index, payload=bytes(20))
                burst.append((Datagram(Endpoint("10.2.0.11", 30_000),
                                       Endpoint("10.1.0.11", port),
                                       packet.serialize()),
                              base + 0.02 * (seq + 1)))
            vids.process_batch(burst, clock=clock)

    profile = cProfile.Profile()
    profile.enable()
    workload()
    profile.disable()

    packets = args.calls * (1 + args.rtp_per_call)
    shard_note = f", {args.shards} shards" if args.shards > 1 else ""
    if args.supervise:
        cadence = (args.checkpoint_cadence
                   if args.checkpoint_cadence is not None
                   else DEFAULT_CLUSTER_CONFIG.checkpoint_cadence)
        shard_note += f", supervised (checkpoint every {cadence})"
    print(f"profiled {args.calls} calls / {packets} packets{shard_note} "
          f"({vids.metrics.sip_messages} SIP, {vids.metrics.rtp_packets} RTP "
          f"analyzed, {len(vids.alerts)} alerts)\n")
    _print_stage_hotspots(profile, args.top, args.sort)
    if args.raw:
        print()
        stats = pstats.Stats(profile, stream=sys.stdout)
        stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_trace(args) -> int:
    """Run one observed scenario and render the forensic timeline."""
    from .attacks import (ByeTeardownAttack, CallHijackAttack,
                          CancelDosAttack, InviteFloodAttack,
                          MediaSpamAttack, RtpFloodAttack, TollFraudAttack)
    from .obs import Observability
    from .telephony import (ScenarioParams, TestbedParams, WorkloadParams,
                            run_scenario)

    factories = {
        "bye": lambda: ByeTeardownAttack(40.0, spoof="none"),
        "bye-spoof": lambda: ByeTeardownAttack(40.0, spoof="peer"),
        "cancel": lambda: CancelDosAttack(40.0),
        "hijack": lambda: CallHijackAttack(40.0),
        "toll-fraud": lambda: TollFraudAttack(40.0),
        "media-spam": lambda: MediaSpamAttack(40.0),
        "rtp-flood": lambda: RtpFloodAttack(40.0, mode="flood"),
        "invite-flood": lambda: InviteFloodAttack(40.0, count=20),
        "none": None,
    }
    obs = Observability(profile=args.profile,
                        trace_capacity=args.capacity)
    from .vids.config import DEFAULT_CONFIG
    vids_config = DEFAULT_CONFIG
    if args.trace_variables:
        vids_config = vids_config.with_overrides(trace_variables=True)
    factory = factories[args.attack]
    attacks = (factory(),) if factory is not None else ()
    shard_fault_plan = None
    if args.kill_shard is not None:
        if not args.supervise:
            print("--kill-shard requires --supervise", file=sys.stderr)
            return 2
        from .netsim.faults import ShardFaultPlan
        shard_fault_plan = ShardFaultPlan(
            kills=((args.horizon / 2.0, args.kill_shard),))
    print(f"running observed scenario (attack={args.attack}, "
          f"seed {args.seed})...", file=sys.stderr)
    result = run_scenario(ScenarioParams(
        testbed=TestbedParams(seed=args.seed, phones_per_network=4),
        workload=WorkloadParams(mean_interarrival=25.0,
                                mean_duration=args.mean_duration,
                                horizon=args.horizon),
        with_vids=True, vids_config=vids_config, attacks=attacks,
        drain_time=90.0, obs=obs,
        shards=args.shards, supervise=args.supervise,
        shard_fault_plan=shard_fault_plan))
    vids = result.vids

    call_id = args.call_id
    if call_id is None and not args.all_calls:
        if attacks and getattr(attacks[0], "victim_call_id", None):
            call_id = attacks[0].victim_call_id
        else:
            call_id = next(
                (a.call_id for a in vids.alerts if a.call_id), None)
    print(obs.timeline(call_id=call_id, limit=args.limit))

    trace = obs.trace
    print(f"\n{trace.emitted} events emitted ({trace.dropped} evicted from "
          f"the ring), {len(trace.call_ids())} calls traced, "
          f"{len(vids.alerts)} alerts", file=sys.stderr)

    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(trace.to_jsonl())
        print(f"wrote trace: {args.jsonl}", file=sys.stderr)
    if args.metrics:
        text = obs.registry.to_prometheus()
        if args.metrics == "-":
            print(text, end="")
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote metrics: {args.metrics}", file=sys.stderr)
    if args.profile and obs.profiler is not None:
        print()
        print(obs.profiler.report())
    return 0


def _load_export(path: str):
    """Parse a trace JSONL file, surfacing ring truncation loudly."""
    from .obs import from_jsonl

    with open(path, "r", encoding="utf-8") as handle:
        export = from_jsonl(handle.read())
    if export.truncated:
        print(f"warning: export reports {export.dropped} events evicted "
              "from the trace ring before the dump; calls with a truncated "
              "head are excluded from training", file=sys.stderr)
    return export


def _cmd_mine(args) -> int:
    """Learn EFSMs from a trace export and report the evidence."""
    import json
    import os

    from .efsm.dot import to_dot
    from .efsm.mine import extract_corpus, mine_machine, replay_sequence

    export = _load_export(args.jsonl)
    corpus = extract_corpus(export, include_attacks=args.include_attacks)
    if args.machine is not None and args.machine not in corpus.sequences:
        print(f"no training sequences for machine {args.machine!r} "
              f"(available: {', '.join(corpus.machines()) or 'none'})",
              file=sys.stderr)
        return 2
    names = [args.machine] if args.machine else corpus.machines()
    mined = {name: mine_machine(corpus.sequences[name], name, k=args.k)
             for name in names}

    replay_failures = 0
    replays = {}
    for name, machine in mined.items():
        deviations = 0
        for sequence in corpus.sequences[name]:
            deviations += sum(
                1 for r in replay_sequence(machine.efsm, sequence)
                if r.transition is None)
        replays[name] = deviations
        replay_failures += deviations

    if args.json:
        print(json.dumps({
            "corpus": corpus.summary(),
            "machines": {name: machine.summary()
                         for name, machine in mined.items()},
            "replay_deviations": replays,
        }, indent=2, sort_keys=True))
    else:
        summary = corpus.summary()
        print(f"corpus: {summary['calls_trained']} calls trained of "
              f"{summary['calls_seen']} seen "
              f"({summary['calls_truncated']} truncated, "
              f"{summary['calls_excluded_attack']} attack-labelled)")
        for name, machine in mined.items():
            info = machine.summary()
            print(f"{name}: {info['states']} states, "
                  f"{info['transitions']} transitions "
                  f"({info['guarded_transitions']} guarded) from "
                  f"{info['sequences']} sequences / {info['steps']} steps; "
                  f"replay deviations: {replays[name]}")
    if args.dot:
        os.makedirs(args.dot, exist_ok=True)
        for name, machine in mined.items():
            path = os.path.join(args.dot, f"{machine.efsm.name}.dot")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_dot(machine.efsm))
                handle.write("\n")
            print(f"wrote {path}", file=sys.stderr)
    if args.strict and (replay_failures or corpus.calls_truncated):
        return 1
    return 0


def _cmd_specdiff(args) -> int:
    """Diff mined machines against the hand-written specifications."""
    import json

    from .efsm.diagnostics import (Severity, count_by_severity,
                                   diagnostics_to_dicts, format_report)
    from .efsm.mine import extract_corpus, mine_machine
    from .efsm.specdiff import specdiff
    from .vids.config import DEFAULT_CONFIG
    from .vids.rtp_machine import build_rtp_machine
    from .vids.sip_machine import build_sip_machine

    config = DEFAULT_CONFIG
    if args.no_cross_protocol:
        config = config.with_overrides(cross_protocol=False)
    specs = {"sip": build_sip_machine(config),
             "rtp": build_rtp_machine(config)}

    export = _load_export(args.jsonl)
    corpus = extract_corpus(export)
    names = [args.machine] if args.machine else sorted(
        set(corpus.machines()) & set(specs))
    diagnostics = []
    for name in names:
        sequences = corpus.sequences.get(name)
        if not sequences:
            print(f"no training sequences for machine {name!r}; "
                  "did the trace run with --trace-variables and a benign "
                  "workload?", file=sys.stderr)
            return 2
        mined = mine_machine(sequences, name, k=args.k)
        diagnostics.extend(specdiff(mined, specs[name]))

    min_severity = {"info": Severity.INFO, "warning": Severity.WARNING,
                    "error": Severity.ERROR}[args.min_severity]
    if args.json:
        counts = count_by_severity(diagnostics)
        print(json.dumps({
            "findings": diagnostics_to_dicts(
                d for d in diagnostics if d.severity >= min_severity),
            "counts": {str(sev): n for sev, n in sorted(counts.items())},
            "corpus": corpus.summary(),
        }, indent=2, sort_keys=True))
    else:
        print(format_report(diagnostics, min_severity=min_severity))
    threshold = Severity.WARNING if args.strict else Severity.ERROR
    return 1 if any(d.severity >= threshold for d in diagnostics) else 0


def _parse_port_range(text: Optional[str]) -> List[int]:
    """``"20000-20019"`` → the inclusive port list; a bare port is itself."""
    if not text:
        return []
    lo, _, hi = text.partition("-")
    first = int(lo)
    last = int(hi) if hi else first
    if not (0 < first <= last <= 65_535):
        raise ValueError(text)
    return list(range(first, last + 1))


def _write_prometheus(obs, path: str) -> None:
    text = obs.registry.to_prometheus()
    if path == "-":
        print(text, end="")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics: {path}", file=sys.stderr)


def _print_alerts(alerts) -> None:
    for alert in alerts:
        where = alert.machine or "-"
        if alert.state:
            where += f"/{alert.state}"
        print(f"  t={alert.time:9.3f}  {alert.attack_type.value:<18} "
              f"call={alert.call_id or '-'} src={alert.source or '-'} "
              f"dst={alert.destination or '-'}  [{where}]")


def _alert_dict(alert) -> dict:
    return {"time": alert.time, "attack_type": alert.attack_type.value,
            "call_id": alert.call_id, "source": alert.source,
            "destination": alert.destination, "machine": alert.machine,
            "state": alert.state, "detail": alert.detail}


def _cmd_serve(args) -> int:
    """Run the live UDP front-end until SIGTERM, then drain gracefully."""
    import asyncio
    import signal

    from .live import UdpFrontend, build_pipeline
    from .obs import Observability

    try:
        rtp_ports = _parse_port_range(args.rtp_range)
    except ValueError:
        print(f"serve: bad --rtp-range {args.rtp_range!r} (want LO-HI)",
              file=sys.stderr)
        return 2
    obs = Observability()
    pipeline, clock = build_pipeline(shards=args.shards,
                                     supervise=args.supervise, obs=obs)
    frontend = UdpFrontend(pipeline, clock, host=args.host,
                           sip_port=args.sip_port, rtp_ports=rtp_ports,
                           flush_interval=args.flush_interval, obs=obs,
                           metrics_port=args.metrics_port)

    async def run() -> None:
        await frontend.start()
        where = f"sip {args.host}:{frontend.sip_port}"
        if frontend.rtp_ports:
            where += (f", rtp {frontend.rtp_ports[0]}-"
                      f"{frontend.rtp_ports[-1]} "
                      f"({len(frontend.rtp_ports)} ports)")
        if frontend.metrics_port is not None:
            where += (f", metrics http://{args.host}:"
                      f"{frontend.metrics_port}/metrics")
        topology = "1 vids"
        if args.supervise:
            topology = f"{max(args.shards, 1)} supervised shards"
        elif args.shards > 1:
            topology = f"{args.shards} shards"
        print(f"listening: {where} -> {topology} "
              f"(SIGTERM drains and exits)", file=sys.stderr)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, frontend.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        if args.max_runtime is not None:
            loop.call_later(args.max_runtime, frontend.request_shutdown)
        await frontend.serve_forever()
        print("shutting down: flushing queue, resolving timers...",
              file=sys.stderr)
        await frontend.stop(drain=True)

    asyncio.run(run())
    live = frontend.metrics
    metrics = pipeline.metrics
    print(f"received {live.datagrams_received} datagrams "
          f"({live.bytes_received} bytes, {live.batches_flushed} batches); "
          f"analysed {metrics.packets_processed} packets "
          f"({metrics.sip_messages} SIP, {metrics.rtp_packets} RTP, "
          f"{metrics.keepalive_packets} keepalives), "
          f"{metrics.calls_created} calls")
    print(f"{len(pipeline.alerts)} alerts")
    _print_alerts(pipeline.alerts)
    if args.metrics:
        _write_prometheus(obs, args.metrics)
    return 0


def _cmd_replay(args) -> int:
    """Decode a capture file and analyse it through the vids pipeline."""
    import json

    from .live import replay_pcap
    from .live.pcap import DecodeStats, PcapError
    from .obs import Observability

    obs = Observability() if args.metrics else None
    stats = DecodeStats()
    try:
        pipeline = replay_pcap(args.pcap, obs=obs, shards=args.shards,
                               supervise=args.supervise,
                               rebase=False if args.no_rebase else "auto",
                               stats=stats)
    except (OSError, PcapError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    metrics = pipeline.metrics
    if args.json:
        print(json.dumps({
            "decode": stats.as_dict(),
            "metrics": metrics.summary(),
            "alerts": [_alert_dict(a) for a in pipeline.alerts],
        }, indent=2, sort_keys=True, default=str))
    else:
        print(f"decoded {stats.udp_datagrams} UDP datagrams from "
              f"{args.pcap} ({stats.frames_read} frames, "
              f"{stats.fragments_reassembled} reassembled, "
              f"{stats.decode_errors} decode errors, "
              f"{stats.truncated_frames} truncated)")
        print(f"analysed {metrics.packets_processed} packets "
              f"({metrics.sip_messages} SIP, {metrics.rtp_packets} RTP, "
              f"{metrics.keepalive_packets} keepalives, "
              f"{metrics.malformed_packets} malformed), "
              f"{metrics.calls_created} calls, "
              f"{metrics.time_regressions} time regressions")
        print(f"{len(pipeline.alerts)} alerts")
        _print_alerts(pipeline.alerts)
    if args.metrics:
        _write_prometheus(obs, args.metrics)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "attack-matrix":
        return _cmd_attack_matrix(args)
    if args.command == "machines":
        return _cmd_machines(args)
    if args.command == "speclint":
        return _cmd_speclint(args)
    if args.command == "codelint":
        return _cmd_codelint(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "mine":
        return _cmd_mine(args)
    if args.command == "specdiff":
        return _cmd_specdiff(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "replay":
        return _cmd_replay(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
