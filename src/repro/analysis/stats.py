"""Descriptive statistics used by the benchmark harness and reports."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["mean", "std", "percentile", "summarize", "bucketize",
           "Summary"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sample."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 below two samples."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile at ``fraction`` in [0, 1]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


class Summary:
    """Five-number-ish summary of a sample."""

    def __init__(self, values: Sequence[float]):
        self.values = list(values)
        self.count = len(self.values)
        self.mean = mean(self.values)
        self.std = std(self.values)
        self.minimum = min(self.values) if self.values else 0.0
        self.maximum = max(self.values) if self.values else 0.0
        self.median = percentile(self.values, 0.5)
        self.p95 = percentile(self.values, 0.95)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (f"Summary(n={self.count}, mean={self.mean:.6f}, "
                f"std={self.std:.6f}, p95={self.p95:.6f})")


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` of the sample."""
    return Summary(values)


def bucketize(samples: Iterable[Tuple[float, float]],
              bucket: float) -> List[Tuple[float, float]]:
    """Average (time, value) samples into fixed-width time buckets."""
    sums: dict = {}
    counts: dict = {}
    for time, value in samples:
        key = int(time // bucket)
        sums[key] = sums.get(key, 0.0) + value
        counts[key] = counts.get(key, 0) + 1
    return [(key * bucket, sums[key] / counts[key]) for key in sorted(sums)]
