"""Export the paper's figure series as CSV files.

Each function takes the scenario results and writes one tidy CSV per
figure, ready for any plotting tool — the reproduction's stand-in for the
paper's OPNET plots:

- Figure 8: call arrivals per bucket, and per-call durations;
- Figure 9: per-call setup delays with and without vids;
- Figure 10: per-call RTP delay and delay variation with and without vids.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Union

from ..telephony.callgen import CallWorkload
from ..telephony.scenario import ScenarioResult

__all__ = ["export_fig8", "export_fig9", "export_fig10", "export_all"]

PathLike = Union[str, Path]


def _writer(path: Path):
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = path.open("w", newline="")
    return handle, csv.writer(handle)


def export_fig8(workload: CallWorkload, directory: PathLike,
                bucket: float = 60.0) -> Dict[str, Path]:
    """Arrivals-per-bucket and per-call duration series."""
    directory = Path(directory)
    arrivals_path = directory / "fig8_arrivals.csv"
    handle, writer = _writer(arrivals_path)
    with handle:
        writer.writerow(["time_s", "arrivals"])
        for index, count in enumerate(workload.arrival_series(bucket)):
            writer.writerow([index * bucket, count])

    durations_path = directory / "fig8_durations.csv"
    handle, writer = _writer(durations_path)
    with handle:
        writer.writerow(["arrival_time_s", "duration_s"])
        for call in workload.calls:
            writer.writerow([f"{call.arrival_time:.3f}",
                             f"{call.duration:.3f}"])
    return {"arrivals": arrivals_path, "durations": durations_path}


def export_fig9(with_vids: ScenarioResult, without_vids: ScenarioResult,
                directory: PathLike) -> Path:
    """Per-call setup delays for the paired runs."""
    directory = Path(directory)
    path = directory / "fig9_setup_delay.csv"
    handle, writer = _writer(path)
    with handle:
        writer.writerow(["placed_at_s", "caller", "with_vids",
                         "setup_delay_s"])
        for result, flag in ((without_vids, 0), (with_vids, 1)):
            for record in result.calls:
                if record.is_caller_side and record.setup_delay is not None:
                    writer.writerow([f"{record.placed_at:.3f}",
                                     record.caller, flag,
                                     f"{record.setup_delay:.6f}"])
    return path


def export_fig10(with_vids: ScenarioResult, without_vids: ScenarioResult,
                 directory: PathLike) -> Path:
    """Per-call RTP delay / delay variation for the paired runs."""
    directory = Path(directory)
    path = directory / "fig10_rtp_qos.csv"
    handle, writer = _writer(path)
    with handle:
        writer.writerow(["placed_at_s", "with_vids", "rtp_mean_delay_s",
                         "rtp_delay_variation_s", "rtp_jitter_s",
                         "rtp_packets"])
        for result, flag in ((without_vids, 0), (with_vids, 1)):
            for record in result.calls:
                if record.rtp_packets_received > 0:
                    writer.writerow([
                        f"{record.placed_at:.3f}", flag,
                        f"{record.rtp_mean_delay:.6f}",
                        f"{record.rtp_delay_variation:.6f}",
                        f"{record.rtp_jitter:.6f}",
                        record.rtp_packets_received,
                    ])
    return path


def export_all(with_vids: ScenarioResult, without_vids: ScenarioResult,
               directory: PathLike) -> Dict[str, Path]:
    """All three figures from one paired run."""
    paths = dict(export_fig8(with_vids.workload, directory))
    paths["fig9"] = export_fig9(with_vids, without_vids, directory)
    paths["fig10"] = export_fig10(with_vids, without_vids, directory)
    return paths
