"""Statistics, reporting, and figure-export helpers."""

from .figures import export_all, export_fig8, export_fig9, export_fig10
from .report import format_table, paper_vs_measured, print_table
from .stats import Summary, bucketize, mean, percentile, std, summarize

__all__ = [
    "Summary",
    "bucketize",
    "export_all",
    "export_fig8",
    "export_fig9",
    "export_fig10",
    "format_table",
    "mean",
    "paper_vs_measured",
    "percentile",
    "print_table",
    "std",
    "summarize",
]
