"""Statistics, reporting, figure-export helpers, and static code analysis."""

from .codecheck import (
    CHECKPOINT_SPECS,
    RULES,
    CheckpointSpec,
    FunctionRef,
    SourceTree,
    analyze,
    fingerprint,
    load_baseline,
    partition_findings,
    write_baseline,
)
from .figures import export_all, export_fig8, export_fig9, export_fig10
from .report import format_table, paper_vs_measured, print_table
from .stats import Summary, bucketize, mean, percentile, std, summarize

__all__ = [
    "CHECKPOINT_SPECS",
    "CheckpointSpec",
    "FunctionRef",
    "RULES",
    "SourceTree",
    "Summary",
    "analyze",
    "bucketize",
    "export_all",
    "export_fig8",
    "export_fig9",
    "export_fig10",
    "fingerprint",
    "format_table",
    "load_baseline",
    "mean",
    "paper_vs_measured",
    "partition_findings",
    "percentile",
    "print_table",
    "std",
    "summarize",
    "write_baseline",
]
