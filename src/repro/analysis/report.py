"""Plain-text tables for the benchmark harness.

Every benchmark prints a "paper vs measured" table through these helpers so
EXPERIMENTS.md and the bench output stay in the same shape.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "paper_vs_measured", "print_table"]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    out = [line(list(headers)), separator]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def paper_vs_measured(title: str,
                      rows: Iterable[Sequence[object]]) -> str:
    """A table with the canonical (metric, paper, measured, note) columns."""
    body = format_table(("metric", "paper", "measured", "note"), rows)
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}\n{body}\n"


def print_table(title: str, rows: Iterable[Sequence[object]]) -> None:
    """Print a paper-vs-measured table to stdout."""
    print(paper_vs_measured(title, rows))
