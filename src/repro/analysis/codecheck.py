"""Static invariant analysis over the *implementation* (``codelint``).

``speclint`` (:mod:`repro.efsm.verify`) verifies the EFSM *specifications*;
this module verifies the implementation invariants those specifications
rely on, by walking the abstract syntax trees of the source files — no
analyzed module is ever imported or executed.  Findings reuse the
:class:`~repro.efsm.diagnostics.Diagnostic` vocabulary, so the CLI, the
baseline gate, and the tests all share one format with speclint.

Rule catalog (``docs/CODECHECK.md``):

``CC001 checkpoint-coverage``
    Every ``__init__``-assigned mutable attribute of a checkpoint-
    participating class must be captured by its snapshot functions *and*
    written back by its restore functions, or carry an audited exemption
    in :data:`CHECKPOINT_SPECS`.  A new field added in a later PR fails
    lint instead of silently surviving failover as stale state.

``CC002 checkpoint-restore-gap``
    Every key a snapshot emits must be consumed on the restore side
    (stale keys are checkpoint bytes nothing reads back).

``GP001 guard-impure-write`` / ``GP002 guard-mutating-call`` /
``GP003 guard-side-effect``
    EFSM guard callables must be pure: speclint probes them against
    sampled configurations, and incremental checkpointing versions calls
    by firing counts — a guard that mutates state corrupts both
    invisibly.  ``ctx.scratch`` writes are the sanctioned memoization
    slot; :func:`~repro.efsm.machine.allow_impure_guard` marks audited
    exceptions.

``PD001 plain-data-state``
    State-variable values must stay inside the plain-data domain
    :func:`~repro.efsm.machine.copy_state` round-trips (no lambdas,
    generators, file handles, or custom class instances).

``SI001 shard-shared-mutation``
    The shard-0-shared trackers (and the cross-shard stray-key set) may
    only be *rebound* at their designated wiring sites; anywhere else a
    rebind silently splits the aggregate view the rate patterns need.

``SI002 pool-boundary``
    Callables submitted across the process-pool boundary must be
    module-level functions (lambdas, closures, and bound methods do not
    pickle).

Suppression: a ``# noqa: CC001`` (etc.) comment on the flagged source
line silences that finding, with the same per-line semantics as
``tools/lint.py``.  Cross-run acceptance goes through the committed
baseline file instead (``tools/codelint_baseline.json``).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from ..efsm.diagnostics import Diagnostic, Severity

__all__ = [
    "RULES",
    "CheckpointSpec",
    "FunctionRef",
    "CHECKPOINT_SPECS",
    "SHARED_STATE_ATTRS",
    "SHARED_STATE_SITES",
    "SourceTree",
    "analyze",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "partition_findings",
]

#: Root of the analyzed package (``src/repro``); module paths in the spec
#: tables are relative to this directory.
SRC_ROOT = Path(__file__).resolve().parents[1]

#: code -> (rule name, severity, one-line summary).
RULES: Dict[str, Tuple[str, Severity, str]] = {
    "CC001": ("checkpoint-coverage", Severity.ERROR,
              "init-assigned mutable attribute not covered by "
              "snapshot/restore"),
    "CC002": ("checkpoint-restore-gap", Severity.ERROR,
              "snapshot-emitted key never consumed by restore"),
    "GP001": ("guard-impure-write", Severity.ERROR,
              "attribute/subscript assignment inside a guard"),
    "GP002": ("guard-mutating-call", Severity.ERROR,
              "known-mutating method call inside a guard"),
    "GP003": ("guard-side-effect", Severity.ERROR,
              "timer/emit side effect inside a guard"),
    "PD001": ("plain-data-state", Severity.WARNING,
              "state value outside the copy_state plain-data domain"),
    "SI001": ("shard-shared-mutation", Severity.ERROR,
              "shard-shared tracker rebound outside its wiring sites"),
    "SI002": ("pool-boundary", Severity.WARNING,
              "non-picklable callable crossing the process-pool boundary"),
    "CX001": ("codecheck-config", Severity.ERROR,
              "analyzer spec references a missing module/class/function"),
}

#: Container/"known-mutating" method names rejected inside guards.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "sort", "reverse", "__setitem__", "__delitem__",
})

#: ``ctx`` methods that are side effects when called from a guard.
CTX_EFFECT_METHODS = frozenset({
    "start_timer", "cancel_timer", "cancel_all_timers", "emit",
})

#: Decorator name that marks an audited impure guard (see
#: :func:`repro.efsm.machine.allow_impure_guard`).
GUARD_ALLOW_DECORATOR = "allow_impure_guard"

#: Call targets whose results stay inside the plain-data domain.
_PLAIN_CALLS = frozenset({
    "dict", "list", "set", "tuple", "frozenset", "str", "int", "float",
    "bool", "bytes", "len", "min", "max", "sum", "abs", "round", "sorted",
    "defaultdict", "Counter", "OrderedDict", "deque", "copy_state", "repr",
    "format", "divmod", "hash", "id", "ord", "chr",
})


# ---------------------------------------------------------------------------
# Spec tables: what must be checkpointed, and where shared state may change
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FunctionRef:
    """A function named by (module path relative to SRC_ROOT, qualname)."""

    module: str
    qualname: str


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint-coverage contract for one state-carrying class.

    ``snapshot``/``restore`` name every function that participates in
    capturing / rebuilding this class's state; an attribute is covered
    when its name is referenced on both sides.  ``exempt`` maps audited
    non-checkpointed attributes to their justification; ``emit_exempt``
    does the same for snapshot keys deliberately not read by restore.
    An empty ``snapshot`` declares the class checkpoint-free: every
    mutable attribute must then be exempt.
    """

    label: str
    module: str
    cls: str
    snapshot: Tuple[FunctionRef, ...] = ()
    restore: Tuple[FunctionRef, ...] = ()
    exempt: Mapping[str, str] = field(default_factory=dict)
    emit_exempt: Mapping[str, str] = field(default_factory=dict)
    #: Constructor name whose keyword arguments are the emitted keys
    #: (dataclass-record checkpoints like ``ShardCheckpoint``).
    record_call: Optional[str] = None


_CLUSTER = "vids/cluster.py"
_SNAPSHOT_SIDE = tuple(
    FunctionRef(_CLUSTER, name) for name in (
        "ShardSupervisor.take_checkpoint",
        "ShardSupervisor._tracker_version",
        "ShardSupervisor._checkpoint_trackers",
        "_snapshot_metrics",
        "_copy_windows",
    ))
_RESTORE_SIDE = tuple(
    FunctionRef(_CLUSTER, name) for name in (
        "ShardSupervisor._apply_checkpoint",
        "ShardSupervisor._restore_trackers",
        "ShardSupervisor._rewire_shared_trackers",
        "ShardSupervisor._build_member_vids",
        "_restore_metrics",
    ))

CHECKPOINT_SPECS: Tuple[CheckpointSpec, ...] = (
    CheckpointSpec(
        label="Efsm",
        module="efsm/machine.py",
        cls="Efsm",
        # Checkpoint-free by design: definitions are built once, sealed by
        # validate(), and shared read-only across every instance — only
        # EfsmInstance carries per-call state.
        exempt={
            "states": "frozen definition data (sealed by validate())",
            "variables": "frozen declaration defaults, copied per instance",
            "global_variables": "frozen declaration defaults",
            "transitions": "frozen transition relation",
            "_index": "derived lookup over the frozen transition relation",
            "_compiled": "derived dispatch table over the frozen transition "
                         "relation, rebuilt lazily (cleared by "
                         "add_transition)",
            "attack_states": "frozen definition data",
            "final_states": "frozen definition data",
            "alphabet": "frozen definition data",
            "channels": "frozen definition data",
        },
    ),
    CheckpointSpec(
        label="Variables",
        module="efsm/machine.py",
        cls="Variables",
        snapshot=(FunctionRef("efsm/machine.py", "Variables.snapshot"),),
        restore=(FunctionRef("efsm/machine.py", "Variables.restore"),),
    ),
    CheckpointSpec(
        label="EfsmInstance",
        module="efsm/machine.py",
        cls="EfsmInstance",
        snapshot=(FunctionRef("efsm/machine.py", "EfsmInstance.snapshot"),),
        restore=(FunctionRef("efsm/machine.py", "EfsmInstance.restore"),),
        exempt={
            "_timers": "opaque scheduler handles; restore re-arms them "
                       "through start_timer from _timer_meta",
            "pending_outputs": "per-firing scratch, drained before deliver "
                               "returns; empty at checkpoint boundaries",
            "history": "bounded recent-firing log (forensics only); the "
                       "deliveries counter carries the change signal",
            "deliveries": "monotonic delivery counter used as a change-"
                          "version signal; checkpoints re-baseline after "
                          "restore",
            "on_timer_event": "delivery hook re-wired by the owning "
                              "EfsmSystem when the instance is rebuilt",
        },
    ),
    CheckpointSpec(
        label="EfsmSystem",
        module="efsm/system.py",
        cls="EfsmSystem",
        snapshot=(FunctionRef("efsm/system.py", "EfsmSystem.snapshot"),),
        restore=(FunctionRef("efsm/system.py", "EfsmSystem.restore"),),
        exempt={
            "_channel_list": "flat mirror of channels maintained by "
                             "connect(); no independent state",
            "results": "bounded recent-firing log (forensics only); the "
                       "deliveries counter carries the change signal",
            "deliveries": "monotonic firing counter used as a change-"
                          "version signal; checkpoints re-baseline after "
                          "restore",
            "_deviations": "append-only observation log (subset of "
                           "firings); lazily allocated behind the "
                           "deviations property",
            "_attack_matches": "append-only observation log (subset of "
                               "firings); lazily allocated behind the "
                               "attack_matches property",
            "_undeliverable": "append-only environment-output log; lazily "
                              "allocated behind the undeliverable property",
        },
    ),
    CheckpointSpec(
        label="CallRecord",
        module="vids/factbase.py",
        cls="CallRecord",
        snapshot=(FunctionRef("vids/factbase.py",
                              "CallStateFactBase.checkpoint_call"),),
        restore=(FunctionRef("vids/factbase.py",
                             "CallStateFactBase.restore_call"),
                 FunctionRef("vids/factbase.py",
                             "CallStateFactBase.refresh_media_index"),
                 FunctionRef("vids/factbase.py",
                             "CallStateFactBase._create")),
        exempt={
            "media_keys": "not stored: re-derived from the restored globals "
                          "by refresh_media_index",
            "media_map": "not stored: re-derived from the restored globals "
                         "by refresh_media_index",
            "_size_cache": "byte-size memo, recomputed lazily",
            "_contribution": "byte-size memo, recomputed lazily",
            "_media_sig": "raw media-global signature memo; re-derived by "
                          "refresh_media_index after restore",
        },
    ),
    CheckpointSpec(
        label="CallStateFactBase",
        module="vids/factbase.py",
        cls="CallStateFactBase",
        snapshot=(FunctionRef(_CLUSTER, "ShardSupervisor.take_checkpoint"),),
        restore=(FunctionRef(_CLUSTER, "ShardSupervisor._apply_checkpoint"),
                 FunctionRef("vids/factbase.py",
                             "CallStateFactBase.restore_call"),
                 FunctionRef("vids/factbase.py", "CallStateFactBase._create"),
                 FunctionRef("vids/factbase.py",
                             "CallStateFactBase.refresh_media_index")),
        exempt={
            "_sip_definition": "immutable Efsm definition (shared, "
                               "data-only; see the Efsm spec)",
            "_rtp_definition": "immutable Efsm definition (shared, "
                               "data-only; see the Efsm spec)",
            "_template": "frozen SystemTemplate over the immutable "
                         "definitions; per-call systems clone it",
            "_interned": "per-dialog string intern pool; a cold pool only "
                         "costs duplicate strings, never correctness",
            "_touches": "memory-sampling cadence counter; resetting it "
                        "only re-times the next sample",
            "_total_bytes": "incremental byte total, rebuilt lazily from "
                            "the _dirty set after restore",
            "_dirty": "size-accounting scratch; _create re-marks every "
                      "restored record",
            "media_index": "re-derived per call by refresh_media_index "
                           "during restore_call",
            "_media_match": "media fast-path memo, refilled on first "
                            "lookup",
        },
    ),
    CheckpointSpec(
        label="Vids",
        module="vids/ids.py",
        cls="Vids",
        snapshot=_SNAPSHOT_SIDE,
        restore=_RESTORE_SIDE,
        exempt={
            "classifier": "holds only a monotonic observability counter; "
                          "a fresh classifier is correct after failover",
            "distributor": "stateless routing facade over factbase/engine/"
                           "trackers; rebuilt by _build_member_vids and "
                           "re-pointed by _rewire_shared_trackers",
            "_var_shadow": "trace-only changed-variable shadow; a cold "
                           "shadow just re-emits full valuations on the "
                           "next fire after failover",
            "_anomaly": "opt-in mined-model scoring cursors; scoring "
                        "restarts per call after failover and raises no "
                        "alerts, only metrics/trace events",
        },
        record_call="ShardCheckpoint",
        emit_exempt={
            "shard": "identity metadata (the member index is the "
                     "restore-side source of truth)",
            "taken_at": "checkpoint-age metadata for observability",
            "call_versions": "incremental-reuse bookkeeping read by the "
                             "next take_checkpoint, not by restore",
            "tracker_version": "incremental-reuse bookkeeping read by the "
                               "next take_checkpoint, not by restore",
        },
    ),
    CheckpointSpec(
        label="InviteFloodTracker",
        module="vids/patterns/invite_flood.py",
        cls="InviteFloodTracker",
        snapshot=(FunctionRef(_CLUSTER,
                              "ShardSupervisor._checkpoint_trackers"),),
        restore=(FunctionRef(_CLUSTER,
                             "ShardSupervisor._restore_trackers"),),
        exempt={
            "_definition": "immutable Figure-4 Efsm definition shared by "
                           "every per-target instance (see the Efsm spec)",
        },
    ),
    CheckpointSpec(
        label="OrphanMediaTracker",
        module="vids/patterns/media_spam.py",
        cls="OrphanMediaTracker",
        snapshot=(FunctionRef(_CLUSTER,
                              "ShardSupervisor._checkpoint_trackers"),),
        restore=(FunctionRef(_CLUSTER,
                             "ShardSupervisor._restore_trackers"),),
    ),
    CheckpointSpec(
        label="AnalysisEngine",
        module="vids/engine.py",
        cls="AnalysisEngine",
        snapshot=(FunctionRef(_CLUSTER, "ShardSupervisor.take_checkpoint"),),
        restore=(FunctionRef(_CLUSTER, "ShardSupervisor._apply_checkpoint"),
                 FunctionRef(_CLUSTER,
                             "ShardSupervisor._restore_trackers")),
        exempt={
            "scenarios": "attack-scenario definition database; immutable "
                         "after construction and identical on every member",
            "deviations": "append-only observation log; the dedup keys "
                          "(_deviation_keys) are what failover must keep",
        },
    ),
)

#: Attribute names aliased across shards (see ``docs/SCALING.md``).
SHARED_STATE_ATTRS = frozenset({
    "flood_tracker", "source_flood_tracker", "orphan_tracker", "_stray_keys",
})

#: (module, qualname) sites allowed to *rebind* a shared-state attribute.
SHARED_STATE_SITES = frozenset({
    ("vids/ids.py", "Vids.__init__"),
    ("vids/distributor.py", "EventDistributor.__init__"),
    ("vids/engine.py", "AnalysisEngine.__init__"),
    ("vids/sharding.py", "ShardedVids.__init__"),
    (_CLUSTER, "ShardSupervisor._build_member_vids"),
    (_CLUSTER, "ShardSupervisor._apply_checkpoint"),
    (_CLUSTER, "ShardSupervisor._rewire_shared_trackers"),
})


# ---------------------------------------------------------------------------
# Source tree access (AST only — analyzed modules are never imported)
# ---------------------------------------------------------------------------

_NOQA_CODE = re.compile(r"[A-Z]+[0-9]+")


def _noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Line number -> silenced rule codes ('*' = all); tools/lint.py rules."""
    silenced: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        if "# noqa" not in line:
            continue
        _, _, tail = line.partition("# noqa")
        if tail.lstrip().startswith(":"):
            codes = set()
            for part in tail.lstrip().lstrip(":").split(","):
                match = _NOQA_CODE.match(part.strip())
                if match:
                    codes.add(match.group(0))
            silenced[number] = codes or {"*"}
        else:
            silenced[number] = {"*"}
    return silenced


class SourceTree:
    """Lazy AST access to every ``*.py`` under a root directory.

    ``overrides`` maps relative paths to replacement source text, letting
    the tests analyze a patched copy of a shipped module (or a synthetic
    module that exists nowhere on disk) without touching the filesystem.
    """

    def __init__(self, root: Optional[Path] = None,
                 overrides: Optional[Mapping[str, str]] = None):
        self.root = Path(root) if root is not None else SRC_ROOT
        self.overrides = dict(overrides or {})
        self._sources: Dict[str, Optional[str]] = {}
        self._modules: Dict[str, Optional[ast.Module]] = {}
        self._noqa: Dict[str, Dict[int, Set[str]]] = {}

    def paths(self) -> List[str]:
        found: Set[str] = set(self.overrides)
        if self.root.is_dir():
            for path in self.root.rglob("*.py"):
                if "__pycache__" in path.parts:
                    continue
                found.add(path.relative_to(self.root).as_posix())
        return sorted(found)

    def source(self, rel: str) -> Optional[str]:
        if rel not in self._sources:
            if rel in self.overrides:
                self._sources[rel] = self.overrides[rel]
            else:
                path = self.root / rel
                try:
                    self._sources[rel] = path.read_text(encoding="utf-8")
                except OSError:
                    self._sources[rel] = None
        return self._sources[rel]

    def module(self, rel: str) -> Optional[ast.Module]:
        if rel not in self._modules:
            source = self.source(rel)
            if source is None:
                self._modules[rel] = None
            else:
                try:
                    self._modules[rel] = ast.parse(source, filename=rel)
                except SyntaxError:
                    self._modules[rel] = None
        return self._modules[rel]

    def noqa(self, rel: str) -> Dict[int, Set[str]]:
        if rel not in self._noqa:
            source = self.source(rel)
            self._noqa[rel] = _noqa_lines(source) if source else {}
        return self._noqa[rel]

    def modules(self) -> Iterator[Tuple[str, ast.Module]]:
        for rel in self.paths():
            module = self.module(rel)
            if module is not None:
                yield rel, module


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _functions_by_qualname(module: ast.Module) -> Dict[str, ast.AST]:
    """Every FunctionDef/AsyncFunctionDef keyed by dotted qualname."""
    found: Dict[str, ast.AST] = {}

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                found[name] = child
                walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.")
            else:
                walk(child, prefix)

    walk(module, "")
    return found


def _find_class(module: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(module):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _attr_chain(node: ast.AST) -> List[str]:
    """Name/attribute chain of an expression: ``ctx.v["x"].y`` -> [ctx, v, y].

    Subscripts and calls are transparent (the chain follows the object
    being indexed/called); a chain not rooted at a plain name is empty.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[::-1]
        else:
            return []


def _mentions(nodes: Iterable[ast.AST]) -> Set[str]:
    """All attribute names, bare names, and string constants in a subtree."""
    seen: Set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Attribute):
                seen.add(node.attr)
            elif isinstance(node, ast.Name):
                seen.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value,
                                                               str):
                seen.add(node.value)
    return seen


def _is_mutable_expr(node: ast.AST) -> bool:
    """Conservative "this init value is a mutable container/object" test."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp, ast.Call)):
        return True
    if isinstance(node, ast.IfExp):
        return _is_mutable_expr(node.body) or _is_mutable_expr(node.orelse)
    if isinstance(node, ast.BoolOp):
        return any(_is_mutable_expr(value) for value in node.values)
    return False


def _init_attrs(cls: ast.ClassDef) -> Dict[str, Tuple[ast.AST, int]]:
    """``self.X = value`` assignments in ``__init__`` -> {X: (value, line)}.

    Nested function bodies are skipped (closures assign to their own
    objects, not to the instance under construction).
    """
    attrs: Dict[str, Tuple[ast.AST, int]] = {}
    init = next((n for n in cls.body
                 if isinstance(n, ast.FunctionDef) and n.name == "__init__"),
                None)
    if init is None:
        return attrs

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                targets = (child.targets if isinstance(child, ast.Assign)
                           else [child.target])
                value = child.value
                for target in targets:
                    if (value is not None
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr not in attrs):
                        attrs[target.attr] = (value, child.lineno)
            walk(child)

    walk(init)
    return attrs


def _mutated_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes rebound or mutated through ``self`` outside ``__init__``."""
    mutated: Set[str] = set()
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in MUTATING_METHODS:
                chain = _attr_chain(node.func.value)
                if len(chain) >= 2 and chain[0] == "self":
                    mutated.add(chain[1])
            for target in targets:
                chain = _attr_chain(target)
                if len(chain) >= 2 and chain[0] == "self":
                    mutated.add(chain[1])
    return mutated


# ---------------------------------------------------------------------------
# Finding construction
# ---------------------------------------------------------------------------

class _Collector:
    """Accumulates findings, applying per-line noqa suppression."""

    def __init__(self, tree: SourceTree):
        self.tree = tree
        self.diagnostics: List[Diagnostic] = []

    def add(self, code: str, message: str, *, path: str, line: int = 0,
            scope: str = "", subject: str = "", hint: str = "") -> None:
        rule, severity, _ = RULES[code]
        if line:
            codes = self.tree.noqa(path).get(line, set())
            if "*" in codes or code in codes:
                return
        print_name = f"{path}:{line}" if line else path
        self.diagnostics.append(Diagnostic(
            rule, severity, message,
            machine=path, state=scope or None, hint=hint,
            data={
                "code": code,
                "path": path,
                "line": line,
                "location": print_name,
                "fingerprint": _make_fingerprint(code, path, scope, subject),
            }))


def _make_fingerprint(code: str, path: str, scope: str, subject: str) -> str:
    return ":".join((code, path, scope, subject))


def fingerprint(diagnostic: Diagnostic) -> str:
    """Stable identity of a finding (line-number free) for baselining."""
    return str(diagnostic.data.get("fingerprint", ""))


# ---------------------------------------------------------------------------
# Rule: checkpoint coverage (CC001/CC002)
# ---------------------------------------------------------------------------

def _resolve_functions(tree: SourceTree, refs: Sequence[FunctionRef],
                       out: _Collector, spec_label: str) -> List[ast.AST]:
    resolved: List[ast.AST] = []
    for ref in refs:
        module = tree.module(ref.module)
        if module is None:
            out.add("CX001",
                    f"spec {spec_label!r} references missing module "
                    f"{ref.module!r}",
                    path=ref.module, scope=spec_label, subject=ref.module)
            continue
        node = _functions_by_qualname(module).get(ref.qualname)
        if node is None:
            out.add("CX001",
                    f"spec {spec_label!r} references missing function "
                    f"{ref.qualname!r} in {ref.module!r}",
                    path=ref.module, scope=spec_label, subject=ref.qualname)
            continue
        resolved.append(node)
    return resolved


def _emitted_keys(functions: Sequence[ast.AST],
                  record_call: Optional[str]) -> Dict[str, int]:
    """Keys a snapshot emits: top-level returned dict literals + record
    constructor keywords.  Maps key -> line for anchoring."""
    keys: Dict[str, int] = {}
    for fn in functions:
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and isinstance(node.value,
                                                           ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and \
                            isinstance(key.value, str):
                        keys.setdefault(key.value, key.lineno)
            elif record_call and isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain and chain[-1] == record_call:
                    for keyword in node.keywords:
                        if keyword.arg:
                            keys.setdefault(keyword.arg, node.lineno)
    return keys


def _check_checkpoint_spec(tree: SourceTree, spec: CheckpointSpec,
                           out: _Collector) -> None:
    module = tree.module(spec.module)
    if module is None:
        out.add("CX001", f"spec {spec.label!r}: module {spec.module!r} "
                f"missing or unparseable",
                path=spec.module, scope=spec.label, subject=spec.module)
        return
    cls = _find_class(module, spec.cls)
    if cls is None:
        out.add("CX001", f"spec {spec.label!r}: class {spec.cls!r} not "
                f"found in {spec.module!r}",
                path=spec.module, scope=spec.label, subject=spec.cls)
        return
    snapshot_fns = _resolve_functions(tree, spec.snapshot, out, spec.label)
    restore_fns = _resolve_functions(tree, spec.restore, out, spec.label)
    snapshot_mentions = _mentions(snapshot_fns)
    restore_mentions = _mentions(restore_fns)

    attrs = _init_attrs(cls)
    mutated = _mutated_attrs(cls)
    flagged_attrs: Set[str] = set()
    for attr, (value, line) in attrs.items():
        if not (_is_mutable_expr(value) or attr in mutated):
            continue                # immutable/config wiring: not state
        if attr in spec.exempt:
            continue
        if not spec.snapshot:
            out.add("CC001",
                    f"{spec.cls}.{attr} is mutable state but {spec.cls} is "
                    f"declared checkpoint-free",
                    path=spec.module, line=line, scope=spec.label,
                    subject=attr,
                    hint="add an audited exemption to CHECKPOINT_SPECS or "
                         "give the class snapshot/restore coverage")
        elif attr not in snapshot_mentions:
            out.add("CC001",
                    f"{spec.cls}.{attr} is mutable state but no snapshot "
                    f"function of spec {spec.label!r} references it: a "
                    f"failover would resurrect it stale",
                    path=spec.module, line=line, scope=spec.label,
                    subject=attr,
                    hint="capture it in the snapshot path or add an audited "
                         "exemption to CHECKPOINT_SPECS")
        elif attr not in restore_mentions:
            flagged_attrs.add(attr)
            out.add("CC001",
                    f"{spec.cls}.{attr} is captured on snapshot but no "
                    f"restore function of spec {spec.label!r} references "
                    f"it: the checkpointed value is never written back",
                    path=spec.module, line=line, scope=spec.label,
                    subject=attr,
                    hint="write it back on the restore path or add an "
                         "audited exemption")
    for attr in spec.exempt:
        if attr not in attrs:
            out.add("CX001",
                    f"spec {spec.label!r} exempts {attr!r} but "
                    f"{spec.cls}.__init__ no longer assigns it",
                    path=spec.module, scope=spec.label,
                    subject=f"stale-exempt:{attr}",
                    hint="drop the stale exemption from CHECKPOINT_SPECS")

    consumed = restore_mentions
    for key, line in _emitted_keys(snapshot_fns, spec.record_call).items():
        if key in spec.emit_exempt or key in consumed:
            continue
        if key in flagged_attrs:
            continue        # root cause already reported as a CC001 gap
        snap_path = spec.snapshot[0].module if spec.snapshot else spec.module
        out.add("CC002",
                f"snapshot of spec {spec.label!r} emits key {key!r} but no "
                f"restore function consumes it",
                path=snap_path, line=line, scope=spec.label, subject=key,
                hint="read the key back on restore, drop it from the "
                     "snapshot, or add an audited emit exemption")


# ---------------------------------------------------------------------------
# Rule: guard purity (GP001-GP003)
# ---------------------------------------------------------------------------

def _has_allow_decorator(fn: ast.AST) -> bool:
    for decorator in getattr(fn, "decorator_list", ()):
        chain = _attr_chain(decorator)
        if chain and chain[-1] == GUARD_ALLOW_DECORATOR:
            return True
        if isinstance(decorator, ast.Call):
            chain = _attr_chain(decorator.func)
            if chain and chain[-1] == GUARD_ALLOW_DECORATOR:
                return True
    return False


def _guard_ctx_name(fn: ast.AST, default: str = "ctx") -> str:
    args = getattr(fn, "args", None)
    if args is None:
        return default
    positional = list(args.posonlyargs) + list(args.args)
    return positional[0].arg if positional else default


def _scratch_aliases(fn: ast.AST, accessors: Set[str]) -> Set[str]:
    """Local names that alias ``ctx.scratch`` (or a sub-object of it).

    Covers the repo's memoization idiom: ``memo = _memo(ctx)`` where
    ``_memo`` is a same-module scratch accessor, plus direct forms like
    ``cache = ctx.scratch`` and co-targets of a scratch write
    (``cache = ctx.scratch = {}``).
    """
    aliases: Set[str] = set()
    for _ in range(2):          # one re-pass settles alias-of-alias chains
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not names:
                continue
            value_chain = _attr_chain(node.value)
            from_scratch = (
                "scratch" in value_chain
                or (value_chain and value_chain[0] in aliases)
                or (isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                    and node.value.func.id in accessors)
                or any("scratch" in _attr_chain(t)
                       for t in node.targets
                       if isinstance(t, (ast.Attribute, ast.Subscript)))
            )
            if from_scratch:
                aliases.update(names)
    return aliases


def _scratch_accessors(functions: Mapping[str, List[ast.AST]]) -> Set[str]:
    """Module functions that return ``ctx.scratch`` (directly or via an
    alias) — calls to them produce scratch-aliased values."""
    accessors: Set[str] = set()
    for _ in range(2):          # settle accessor-calls-accessor chains
        for name, defs in functions.items():
            for fn in defs:
                aliases = _scratch_aliases(fn, accessors)
                for node in ast.walk(fn):
                    if not isinstance(node, ast.Return) or node.value is None:
                        continue
                    chain = _attr_chain(node.value)
                    if "scratch" in chain or (chain and chain[0] in aliases):
                        accessors.add(name)
    return accessors


class _GuardChecker:
    """Purity walk over one guard callable (transitively, same module)."""

    def __init__(self, rel: str, functions: Mapping[str, List[ast.AST]],
                 out: _Collector):
        self.rel = rel
        self.functions = functions
        self.out = out
        self.accessors = _scratch_accessors(functions)
        self.seen: Set[int] = set()

    def check(self, fn: ast.AST, guard_name: str, ctx: str,
              depth: int = 0) -> None:
        if id(fn) in self.seen or depth > 5:
            return
        self.seen.add(id(fn))
        if _has_allow_decorator(fn):
            return
        aliases = _scratch_aliases(fn, self.accessors)
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        for stmt in body:
            for node in ast.walk(stmt):
                self._check_node(node, guard_name, ctx, aliases, depth)

    def _allowed_write(self, chain: List[str], ctx: str,
                       aliases: Set[str]) -> bool:
        if not chain:
            return False
        if chain[0] == ctx and len(chain) >= 2 and chain[1] == "scratch":
            return True
        return chain[0] in aliases

    def _check_node(self, node: ast.AST, guard: str, ctx: str,
                    aliases: Set[str], depth: int) -> None:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                chain = _attr_chain(target)
                if not self._allowed_write(chain, ctx, aliases):
                    where = ".".join(chain) or "<expression>"
                    self.out.add(
                        "GP001",
                        f"guard {guard!r} writes {where}: guards must be "
                        f"pure (speclint probes them; checkpoint versioning "
                        f"assumes firings are the only mutations)",
                        path=self.rel, line=target.lineno, scope=guard,
                        subject=where,
                        hint="move the mutation into the transition action, "
                             "memoize via ctx.scratch, or decorate with "
                             "@allow_impure_guard(reason)")
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                chain = _attr_chain(node.func)
                method = node.func.attr
                if method in MUTATING_METHODS and \
                        not self._allowed_write(chain[:-1] or chain, ctx,
                                                aliases) \
                        and "scratch" not in chain:
                    where = ".".join(chain)
                    self.out.add(
                        "GP002",
                        f"guard {guard!r} calls mutating method {where}()",
                        path=self.rel, line=node.lineno, scope=guard,
                        subject=where,
                        hint="guards may only read; mutate from the action "
                             "or decorate with @allow_impure_guard(reason)")
                elif chain[:1] == [ctx] and method in CTX_EFFECT_METHODS:
                    self.out.add(
                        "GP003",
                        f"guard {guard!r} calls {ctx}.{method}(): timers "
                        f"and emissions are side effects",
                        path=self.rel, line=node.lineno, scope=guard,
                        subject=method,
                        hint="start timers / emit events from the action")
            elif isinstance(node.func, ast.Name):
                for callee in self.functions.get(node.func.id, []):
                    self.check(callee, guard, _guard_ctx_name(callee, ctx),
                               depth + 1)


def _check_guards(tree: SourceTree, out: _Collector) -> None:
    for rel, module in tree.modules():
        functions: Dict[str, List[ast.AST]] = {}
        for node in ast.walk(module):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, []).append(node)
        checker = _GuardChecker(rel, functions, out)
        for node in ast.walk(module):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain or chain[-1] != "add_transition":
                continue
            predicate: Optional[ast.AST] = None
            for keyword in node.keywords:
                if keyword.arg == "predicate":
                    predicate = keyword.value
            if predicate is None and len(node.args) > 3:
                predicate = node.args[3]
            if predicate is None:
                continue
            if isinstance(predicate, ast.Lambda):
                ctx = _guard_ctx_name(predicate)
                checker.check(predicate, f"<lambda:{predicate.lineno}>", ctx)
            elif isinstance(predicate, ast.Name):
                for fn in functions.get(predicate.id, []):
                    checker.check(fn, predicate.id, _guard_ctx_name(fn))


# ---------------------------------------------------------------------------
# Rule: plain-data state values (PD001)
# ---------------------------------------------------------------------------

def _non_plain_reason(node: ast.AST) -> Optional[str]:
    """Why a value expression leaves the copy_state plain-data domain."""
    if isinstance(node, ast.Lambda):
        return "a callable (lambda)"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
        return "a lazy/async value"
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            reason = _non_plain_reason(element)
            if reason:
                return reason
        return None
    if isinstance(node, ast.Dict):
        for child in (*node.keys, *node.values):
            if child is None:
                continue
            reason = _non_plain_reason(child)
            if reason:
                return reason
        return None
    if isinstance(node, ast.IfExp):
        return (_non_plain_reason(node.body)
                or _non_plain_reason(node.orelse))
    if isinstance(node, ast.Starred):
        return _non_plain_reason(node.value)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "open":
                return "a file handle"
            if name == "iter":
                return "an iterator"
            if name in _PLAIN_CALLS or not name[:1].isupper():
                return None
            return f"an instance of {name}"
        return None       # method calls / attribute constructors: unknown
    return None           # constants, names, subscripts, comprehensions, ...


def _check_plain_state(tree: SourceTree, out: _Collector) -> None:
    for rel, module in tree.modules():
        scopes: List[Tuple[str, ast.AST]] = [("<module>", module)]
        qualnames = _functions_by_qualname(module)
        # Anchor findings to the innermost enclosing function for context.
        owner: Dict[int, str] = {}
        for qualname, fn in qualnames.items():
            for node in ast.walk(fn):
                owner[id(node)] = qualname
        del scopes
        for node in ast.walk(module):
            scope = owner.get(id(node), "<module>")
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("declare", "declare_global"):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    reason = _non_plain_reason(keyword.value)
                    if reason:
                        out.add(
                            "PD001",
                            f"state variable {keyword.arg!r} defaults to "
                            f"{reason}; copy_state cannot round-trip it "
                            f"through a checkpoint",
                            path=rel, line=keyword.value.lineno, scope=scope,
                            subject=keyword.arg,
                            hint="keep state plain data (numbers, strings, "
                                 "tuples, dicts); derive richer values on "
                                 "read")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "v"):
                        continue
                    reason = _non_plain_reason(node.value)
                    if reason:
                        key = ""
                        sub = target.slice
                        if isinstance(sub, ast.Constant):
                            key = str(sub.value)
                        out.add(
                            "PD001",
                            f"state write {'to ' + repr(key) if key else ''}"
                            f" stores {reason}; copy_state cannot "
                            f"round-trip it through a checkpoint",
                            path=rel, line=node.lineno, scope=scope,
                            subject=key or f"line{node.lineno}",
                            hint="store plain data in ctx.v; keep exotic "
                                 "objects out of the state vector")


# ---------------------------------------------------------------------------
# Rule: shard-state isolation (SI001/SI002)
# ---------------------------------------------------------------------------

class _ScopeWalker:
    """Depth-first walk that tracks the dotted class/function qualname."""

    def __init__(self, module: ast.Module):
        self.module = module

    def scoped_nodes(self) -> Iterator[Tuple[str, ast.AST]]:
        def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    name = (f"{prefix}.{child.name}" if prefix
                            else child.name)
                    yield name, child
                    yield from walk(child, name)
                else:
                    yield prefix, child
                    yield from walk(child, prefix)

        yield from walk(self.module, "")


def _check_shard_isolation(tree: SourceTree, out: _Collector,
                           shared_attrs: frozenset = SHARED_STATE_ATTRS,
                           allowed_sites: frozenset = SHARED_STATE_SITES
                           ) -> None:
    for rel, module in tree.modules():
        for scope, node in _ScopeWalker(module).scoped_nodes():
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and target.attr in shared_attrs):
                    continue
                if (rel, scope) in allowed_sites:
                    continue
                out.add(
                    "SI001",
                    f"{scope or '<module>'} rebinds shared attribute "
                    f"{target.attr!r}: outside the designated wiring sites "
                    f"a rebind splits the cross-shard aggregate view",
                    path=rel, line=target.lineno, scope=scope or "<module>",
                    subject=target.attr,
                    hint="mutate the shared object in place, or do the "
                         "rewiring in a designated site "
                         "(codecheck.SHARED_STATE_SITES)")
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "submit" and node.args:
                module_level = {
                    n.name for n in module.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
                worker = node.args[0]
                problem = ""
                if isinstance(worker, ast.Lambda):
                    problem = "a lambda"
                elif isinstance(worker, ast.Attribute):
                    problem = f"a bound callable ({ast.unparse(worker)})"
                elif isinstance(worker, ast.Name) and \
                        worker.id not in module_level:
                    # Imported names resolve at the worker; only names that
                    # exist in this module but not at module level (nested
                    # defs) are known-unpicklable.
                    nested = any(
                        isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and n.name == worker.id
                        for n in ast.walk(module))
                    if nested:
                        problem = f"a nested function ({worker.id})"
                for arg in node.args[1:]:
                    if isinstance(arg, ast.Lambda):
                        problem = problem or "a lambda argument"
                    elif isinstance(arg, ast.Name) and arg.id == "self":
                        problem = problem or "self (the whole facade)"
                if problem:
                    out.add(
                        "SI002",
                        f"{scope or '<module>'} submits {problem} across "
                        f"the process-pool boundary; it will not pickle",
                        path=rel, line=node.lineno,
                        scope=scope or "<module>",
                        subject=f"line{node.lineno}",
                        hint="pass a module-level function and plain-data "
                             "arguments to pool.submit")


# ---------------------------------------------------------------------------
# Driver + baseline
# ---------------------------------------------------------------------------

def analyze(root: Optional[Path] = None,
            overrides: Optional[Mapping[str, str]] = None,
            specs: Sequence[CheckpointSpec] = CHECKPOINT_SPECS,
            check_guards: bool = True,
            check_plain_state: bool = True,
            check_isolation: bool = True) -> List[Diagnostic]:
    """Run every codecheck rule over the tree; returns structured findings.

    ``root`` defaults to the installed ``repro`` package source; tests
    pass a fixture directory and/or ``overrides`` with patched sources.
    """
    tree = SourceTree(root, overrides)
    out = _Collector(tree)
    for spec in specs:
        _check_checkpoint_spec(tree, spec, out)
    if check_guards:
        _check_guards(tree, out)
    if check_plain_state:
        _check_plain_state(tree, out)
    if check_isolation:
        _check_shard_isolation(tree, out)
    out.diagnostics.sort(key=lambda d: (d.machine or "",
                                        d.data.get("line", 0),
                                        d.data.get("code", "")))
    return out.diagnostics


def load_baseline(path: Path) -> Dict[str, str]:
    """Committed fingerprint -> note mapping (missing file = empty)."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    findings = raw.get("findings", raw) if isinstance(raw, dict) else raw
    if isinstance(findings, list):
        return {str(item): "" for item in findings}
    if isinstance(findings, dict):
        return {str(k): str(v) for k, v in findings.items()}
    return {}


def write_baseline(path: Path, diagnostics: Iterable[Diagnostic]) -> None:
    findings = {fingerprint(d): d.message for d in diagnostics
                if fingerprint(d)}
    payload = {
        "comment": "codelint baseline: accepted findings by fingerprint "
                   "(docs/CODECHECK.md); regenerate with "
                   "`python -m repro.cli codelint --write-baseline`",
        "findings": dict(sorted(findings.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def partition_findings(diagnostics: Sequence[Diagnostic],
                       baseline: Mapping[str, str]
                       ) -> Tuple[List[Diagnostic], List[Diagnostic],
                                  List[str]]:
    """Split findings into (new, baselined); also return stale baseline
    fingerprints that no longer fire (candidates for cleanup)."""
    new: List[Diagnostic] = []
    accepted: List[Diagnostic] = []
    seen: Set[str] = set()
    for diagnostic in diagnostics:
        print_ = fingerprint(diagnostic)
        seen.add(print_)
        (accepted if print_ in baseline else new).append(diagnostic)
    stale = sorted(set(baseline) - seen)
    return new, accepted, stale
