"""Network addressing primitives for the simulated IP/UDP layer."""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Endpoint", "parse_endpoint"]


class Endpoint(NamedTuple):
    """A UDP endpoint: (IPv4 address string, port number)."""

    ip: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.ip}:{self.port}"


def parse_endpoint(text: str, default_port: int = 5060) -> Endpoint:
    """Parse ``"ip[:port]"`` into an :class:`Endpoint`."""
    if ":" in text:
        host, _, port = text.partition(":")
        return Endpoint(host, int(port))
    return Endpoint(text, default_port)
