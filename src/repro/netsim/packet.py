"""Packet model: UDP datagrams carried over the simulated IP network.

The reproduction carries *real* protocol payloads — SIP messages are RFC 3261
text and RTP packets are RFC 3550 binary — so the vids packet classifier
works from the same information a sniffer on the wire would see.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .address import Endpoint

__all__ = ["Datagram", "IP_UDP_OVERHEAD"]

#: Bytes of IP (20) + UDP (8) header added to every payload on the wire.
IP_UDP_OVERHEAD = 28

_packet_ids = itertools.count(1)


@dataclass
class Datagram:
    """A UDP datagram in flight.

    Attributes:
        src: source endpoint (ip, port).
        dst: destination endpoint (ip, port).
        payload: application bytes (SIP text or RTP binary).
        created_at: simulation time the datagram was handed to the stack.
        packet_id: unique id for tracing.
        hops: number of store-and-forward hops traversed so far.
    """

    src: Endpoint
    dst: Endpoint
    payload: bytes
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    @property
    def size(self) -> int:
        """Total on-the-wire size in bytes, including IP/UDP headers."""
        return len(self.payload) + IP_UDP_OVERHEAD

    def copy(self) -> "Datagram":
        """A duplicate of this datagram with a fresh packet id."""
        return Datagram(
            src=self.src,
            dst=self.dst,
            payload=self.payload,
            created_at=self.created_at,
            hops=self.hops,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        head = self.payload[:24]
        return (
            f"Datagram#{self.packet_id}({self.src} -> {self.dst}, "
            f"{len(self.payload)}B, {head!r}...)"
        )
