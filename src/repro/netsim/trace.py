"""Packet tracing utilities for debugging and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .packet import Datagram

__all__ = ["TraceRecord", "PacketTrace"]


@dataclass
class TraceRecord:
    """One observed packet."""

    time: float
    datagram: Datagram
    where: str


class PacketTrace:
    """A passive recorder that can be wired as an inline-device processor
    or called explicitly from application handlers."""

    def __init__(self, where: str = "", keep_payloads: bool = True,
                 predicate: Optional[Callable[[Datagram], bool]] = None):
        self.where = where
        self.keep_payloads = keep_payloads
        self.predicate = predicate
        self.records: List[TraceRecord] = []

    def process(self, datagram: Datagram, now: float) -> float:
        """PacketProcessor interface: record and charge zero CPU."""
        self.observe(datagram, now)
        return 0.0

    def observe(self, datagram: Datagram, now: float) -> None:
        if self.predicate is not None and not self.predicate(datagram):
            return
        if not self.keep_payloads:
            # Keep the original packet_id and hops: the stripped copy must
            # still correlate with observations of the same packet at other
            # trace points (letting the field default would mint a fresh id
            # from the global counter).
            datagram = Datagram(datagram.src, datagram.dst, b"",
                                created_at=datagram.created_at,
                                packet_id=datagram.packet_id,
                                hops=datagram.hops)
        self.records.append(TraceRecord(now, datagram, self.where))

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
