"""Deterministic fault injection for simulated links.

An IDS deployed as a bump-in-the-wire device is fed by the open Internet:
corrupted datagrams, duplicated and reordered packets, bursty loss, and
flapping access links are its normal operating weather, not exceptional
inputs.  This module provides the machinery to *manufacture* that weather
reproducibly so the robustness of the vids pipeline can be asserted in
tests rather than hoped for.

A :class:`FaultPlan` describes what to inject; a :class:`FaultyLink` wraps
an existing :class:`~repro.netsim.link.Link` and applies the plan to every
datagram crossing it, in both directions.  All randomness comes from one
explicit ``random.Random(plan.seed)`` stream, so two runs with the same
plan produce bit-identical fault sequences — the property the chaos suite
relies on when it asserts that re-running a scenario reproduces identical
alert and metric counts.

Fault repertoire (applied in this order, each with its own probability):

- **link flap** — the link is administratively down during scheduled
  ``(down_at, up_at)`` intervals; everything offered while down is dropped;
- **burst loss** — a two-state Gilbert–Elliott model: a *good* state with
  light independent loss and a *bad* state with heavy loss, with per-packet
  transition probabilities, producing correlated loss bursts rather than
  the Bernoulli loss the plain link already models;
- **corruption** — up to ``corrupt_bits`` random bit flips in the payload;
- **truncation** — the payload is cut at a random offset;
- **duplication** — the datagram is transmitted twice;
- **reordering** — the datagram is held back for a random delay so later
  traffic overtakes it.

Corruption and truncation mutate a *copy* of the datagram; the sender's
view of what it transmitted is never altered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from .packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import TraceBus
    from .link import Link

__all__ = ["FaultPlan", "FaultStats", "FaultyLink", "ShardFaultPlan",
           "inject_faults"]


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, with what probability.  Everything defaults off."""

    #: Master seed for the plan's private random stream.
    seed: int = 0

    # -- payload corruption ---------------------------------------------------
    #: Probability a datagram's payload gets random bit flips.
    corrupt_rate: float = 0.0
    #: Bit flips applied to a corrupted payload (1..corrupt_bits, uniform).
    corrupt_bits: int = 4
    #: Probability a datagram's payload is truncated at a random offset.
    truncate_rate: float = 0.0

    # -- delivery faults ------------------------------------------------------
    #: Probability a datagram is transmitted twice.
    duplicate_rate: float = 0.0
    #: Probability a datagram is held back so later packets overtake it.
    reorder_rate: float = 0.0
    #: Maximum hold-back (seconds) for a reordered datagram.
    reorder_delay: float = 0.05

    # -- Gilbert-Elliott burst loss -------------------------------------------
    #: P(good -> bad) evaluated once per offered datagram.
    burst_enter: float = 0.0
    #: P(bad -> good) evaluated once per offered datagram.
    burst_exit: float = 0.3
    #: Independent loss probability while in the good state.
    loss_good: float = 0.0
    #: Independent loss probability while in the bad state.
    loss_bad: float = 1.0

    # -- link flapping ---------------------------------------------------------
    #: Absolute-time ``(down_at, up_at)`` outage intervals.
    flaps: Tuple[Tuple[float, float], ...] = ()

    def with_overrides(self, **overrides) -> "FaultPlan":
        """A copy of this plan with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def active(self) -> bool:
        """True if the plan can actually perturb traffic."""
        return bool(self.corrupt_rate or self.truncate_rate
                    or self.duplicate_rate or self.reorder_rate
                    or self.burst_enter or self.loss_good or self.flaps)


@dataclass(frozen=True)
class ShardFaultPlan:
    """Deterministic faults against *IDS shards* rather than links.

    Consumed by :class:`repro.vids.cluster.ShardSupervisor`: every entry
    names an absolute simulation time and a shard index, so two runs with
    the same plan kill/hang/slow the same members at the same instants —
    the chaos suite's reproducibility contract, same as :class:`FaultPlan`.
    """

    #: ``(at, shard)``: the member's process dies at time ``at`` (it stops
    #: answering heartbeats and accepting packets until restarted).
    kills: Tuple[Tuple[float, int], ...] = ()
    #: ``(at, until, shard)``: the member wedges — alive but unresponsive —
    #: for the interval; restarts attempted while wedged fail too.
    hangs: Tuple[Tuple[float, float, int], ...] = ()
    #: ``(at, until, shard, factor)``: the member's per-packet service time
    #: is multiplied by ``factor`` during the interval (a hot/degraded
    #: member that backpressure and rebalancing must absorb).
    slowdowns: Tuple[Tuple[float, float, int, float], ...] = ()

    def with_overrides(self, **overrides) -> "ShardFaultPlan":
        """A copy of this plan with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def active(self) -> bool:
        """True if the plan can actually perturb the cluster."""
        return bool(self.kills or self.hangs or self.slowdowns)

    def slow_factor(self, shard: int, now: float) -> float:
        """Service-time multiplier for ``shard`` at time ``now`` (>= 1.0)."""
        factor = 1.0
        for at, until, index, scale in self.slowdowns:
            if index == shard and at <= now < until:
                factor = max(factor, scale)
        return factor


@dataclass
class FaultStats:
    """Counters kept by a :class:`FaultyLink` (both directions combined)."""

    offered: int = 0
    delivered: int = 0
    corrupted: int = 0
    truncated: int = 0
    duplicated: int = 0
    reordered: int = 0
    dropped_burst: int = 0
    dropped_flap: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "corrupted": self.corrupted,
            "truncated": self.truncated,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "dropped_burst": self.dropped_burst,
            "dropped_flap": self.dropped_flap,
        }


class _GilbertElliott:
    """Two-state (good/bad) correlated-loss channel model."""

    def __init__(self, plan: FaultPlan, rng: random.Random):
        self.plan = plan
        self.rng = rng
        self.bad = False

    def drops(self) -> bool:
        plan = self.plan
        if plan.burst_enter <= 0.0 and plan.loss_good <= 0.0:
            return False
        if self.bad:
            if self.rng.random() < plan.burst_exit:
                self.bad = False
        else:
            if self.rng.random() < plan.burst_enter:
                self.bad = True
        loss = plan.loss_bad if self.bad else plan.loss_good
        return loss > 0.0 and self.rng.random() < loss


class FaultyLink:
    """Installs a :class:`FaultPlan` onto an existing link.

    The wrapper patches the link's ``transmit`` entry point, so node and
    route wiring are untouched: receivers still see the original
    :class:`~repro.netsim.link.Link` instance and identity checks such as
    ``in_link is self.links[1]`` keep working.  ``uninstall`` restores the
    pristine link.
    """

    def __init__(self, link: "Link", plan: FaultPlan,
                 trace: Optional["TraceBus"] = None):
        self.link = link
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats()
        self._ge = _GilbertElliott(plan, self.rng)
        self._original_transmit = link.transmit
        self._installed = False
        #: Observability trace bus; every injected fault lands on it so a
        #: forensic timeline can correlate perturbations with verdicts.
        self.trace = trace

    def _note(self, fault: str, datagram: Datagram, now: float) -> None:
        """Emit one fault event (only called when tracing)."""
        self.trace.emit("fault", now, packet_id=datagram.packet_id,
                        fault=fault, link=self.link.name)

    # -- lifecycle ------------------------------------------------------------

    def install(self) -> "FaultyLink":
        if not self._installed:
            self.link.transmit = self._transmit  # type: ignore[method-assign]
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.link.transmit = self._original_transmit  # type: ignore[method-assign]
            self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    # -- fault application ----------------------------------------------------

    def is_down(self, now: float) -> bool:
        """True while a scheduled flap interval covers ``now``."""
        return any(down <= now < up for down, up in self.plan.flaps)

    def _transmit(self, datagram: Datagram, sender) -> None:
        plan = self.plan
        rng = self.rng
        sim = self.link.network.sim
        trace = self.trace
        self.stats.offered += 1

        if self.is_down(sim.now):
            self.stats.dropped_flap += 1
            if trace is not None:
                self._note("flap-drop", datagram, sim.now)
            return
        if self._ge.drops():
            self.stats.dropped_burst += 1
            if trace is not None:
                self._note("burst-drop", datagram, sim.now)
            return

        payload = datagram.payload
        mutated = False
        if plan.corrupt_rate and payload and rng.random() < plan.corrupt_rate:
            payload = self._flip_bits(payload)
            self.stats.corrupted += 1
            mutated = True
            if trace is not None:
                self._note("corrupt", datagram, sim.now)
        if plan.truncate_rate and payload and rng.random() < plan.truncate_rate:
            payload = payload[:rng.randrange(len(payload))]
            self.stats.truncated += 1
            mutated = True
            if trace is not None:
                self._note("truncate", datagram, sim.now)
        if mutated:
            # Keep the original packet_id: the mutated copy is still the
            # same wire packet, and downstream trace points must correlate.
            datagram = Datagram(src=datagram.src, dst=datagram.dst,
                                payload=payload,
                                created_at=datagram.created_at,
                                packet_id=datagram.packet_id,
                                hops=datagram.hops)

        if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
            self.stats.duplicated += 1
            if trace is not None:
                self._note("duplicate", datagram, sim.now)
            self._original_transmit(datagram.copy(), sender)

        if plan.reorder_rate and rng.random() < plan.reorder_rate:
            self.stats.reordered += 1
            if trace is not None:
                self._note("reorder", datagram, sim.now)
            delay = rng.uniform(0.0, plan.reorder_delay)
            sim.schedule(delay, self._original_transmit, datagram, sender,
                         label=f"reorder@{self.link.name}")
            return

        self.stats.delivered += 1
        self._original_transmit(datagram, sender)

    def _flip_bits(self, payload: bytes) -> bytes:
        data = bytearray(payload)
        for _ in range(self.rng.randint(1, max(1, self.plan.corrupt_bits))):
            data[self.rng.randrange(len(data))] ^= 1 << self.rng.randrange(8)
        return bytes(data)


def inject_faults(link: "Link", plan: FaultPlan,
                  trace: Optional["TraceBus"] = None) -> FaultyLink:
    """Wrap ``link`` with ``plan`` and activate it; returns the wrapper."""
    return FaultyLink(link, plan, trace=trace).install()
