"""Discrete-event simulation engine.

This is the substrate that replaces the paper's OPNET Modeler: a single
binary-heap event loop with a float-seconds clock.  Every component in the
reproduction (phones, proxies, routers, the vids inline device, attackers)
schedules callbacks on one :class:`Simulator` instance, so the whole VoIP
testbed shares one notion of time and one deterministic ordering of events.

Events scheduled for the same instant fire in scheduling order (a per-event
monotonically increasing sequence number breaks ties), which makes runs fully
reproducible for a given seed.

Cancellation is lazy (entries are flagged and skipped at pop time), but the
engine keeps an exact live-event counter so :attr:`Simulator.pending_events`
is O(1), and it compacts the heap whenever cancelled entries outnumber live
ones — SIP transaction timers cancel constantly, and without compaction a
long run drags a heap full of dead entries through every push and pop.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Timer", "SimulationError"]

#: Queue size below which cancelled entries are never compacted away.
_COMPACT_MIN_QUEUE = 64


class SimulationError(Exception):
    """Raised for invalid interactions with the simulation engine."""


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    """Internal heap entry: ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class Timer:
    """Handle to a scheduled event, allowing cancellation and rescheduling.

    Timers are how protocol state machines (SIP transaction timers, the
    vids attack-pattern timers T and T1) interact with simulated time.
    """

    __slots__ = ("_sim", "_event")

    def __init__(self, sim: "Simulator", event: _ScheduledEvent):
        self._sim = sim
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the timer fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not self._event.cancelled and not self._event.fired

    @property
    def callback(self) -> Callable[..., None]:
        """The callback this timer will invoke."""
        return self._event.callback

    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired or was cancelled."""
        self._sim._cancel(self._event)

    def reschedule(self, delay: float) -> "Timer":
        """Re-arm this timer ``delay`` seconds from now, reusing the handle.

        The retransmission pattern (SIP timers A/E/G reset with a doubled
        interval on every firing) would otherwise allocate a fresh heap
        entry and a fresh :class:`Timer` per reset; an already-fired entry
        is recycled in place and an unfired one is cancelled lazily.
        Returns ``self`` so call sites can treat it like ``schedule``.
        """
        sim = self._sim
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past: delay={delay}")
        event = self._event
        if event.fired and not event.cancelled:
            # The entry already left the heap: recycle it.
            event.time = sim._now + delay
            event.seq = sim._seq
            sim._seq += 1
            event.fired = False
            heapq.heappush(sim._queue, event)
            sim._pending += 1
        else:
            self.cancel()
            self._event = sim._push(sim._now + delay, event.callback,
                                    event.args, event.label)
        return self


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=100.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        #: Exact number of queued, not-cancelled, not-fired events.
        self._pending = 0
        #: Cancelled entries still sitting in the heap (lazy deletion debt).
        self._cancelled_in_queue = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued.  O(1)."""
        return self._pending

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if math.isnan(time) or time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now})"
            )
        return Timer(self, self._push(time, callback, args, label))

    def _push(self, time: float, callback: Callable[..., None],
              args: tuple, label: str) -> _ScheduledEvent:
        event = _ScheduledEvent(
            time=time, seq=self._seq, callback=callback, args=args, label=label
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    # -- cancellation ---------------------------------------------------------

    def _cancel(self, event: _ScheduledEvent) -> None:
        """Lazily cancel a queued event; compact the heap when it is mostly
        dead weight."""
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._pending -= 1
        self._cancelled_in_queue += 1
        if (len(self._queue) >= _COMPACT_MIN_QUEUE
                and self._cancelled_in_queue * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(live) amortized).

        In-place (slice assignment) so the run loop's local alias of the
        queue stays valid when a callback's cancel triggers compaction.
        """
        self._queue[:] = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def _pop_live(self) -> Optional[_ScheduledEvent]:
        """Pop the next non-cancelled event, shedding dead entries."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Stops when the queue empties, when the next event would be after
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` dispatches.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        dispatched = 0
        queue = self._queue
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    heapq.heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(queue)
                self._now = event.time
                self._events_processed += 1
                self._pending -= 1
                event.fired = True
                dispatched += 1
                event.callback(*event.args)
                if max_events is not None and dispatched >= max_events:
                    return
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch exactly one event.  Returns False if the queue is empty."""
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        self._pending -= 1
        event.fired = True
        event.callback(*event.args)
        return True

    def stats(self) -> dict:
        """Point-in-time engine counters (metrics exposition)."""
        return {
            "now": self._now,
            "events_processed": self._events_processed,
            "pending_events": self._pending,
        }

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._cancelled_in_queue -= 1
        return queue[0].time if queue else None
