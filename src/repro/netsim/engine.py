"""Discrete-event simulation engine.

This is the substrate that replaces the paper's OPNET Modeler: a single
binary-heap event loop with a float-seconds clock.  Every component in the
reproduction (phones, proxies, routers, the vids inline device, attackers)
schedules callbacks on one :class:`Simulator` instance, so the whole VoIP
testbed shares one notion of time and one deterministic ordering of events.

Events scheduled for the same instant fire in scheduling order (a per-event
monotonically increasing sequence number breaks ties), which makes runs fully
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Timer", "SimulationError"]


class SimulationError(Exception):
    """Raised for invalid interactions with the simulation engine."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: ordered by (time, seq)."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class Timer:
    """Handle to a scheduled event, allowing cancellation and rescheduling.

    Timers are how protocol state machines (SIP transaction timers, the
    vids attack-pattern timers T and T1) interact with simulated time.
    """

    def __init__(self, sim: "Simulator", event: _ScheduledEvent):
        self._sim = sim
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time at which the timer fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not self._event.cancelled and self._event.time >= self._sim.now

    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired or was cancelled."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=100.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if math.isnan(time) or time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now})"
            )
        event = _ScheduledEvent(
            time=time, seq=self._seq, callback=callback, args=args, label=label
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        return Timer(self, event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Stops when the queue empties, when the next event would be after
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` dispatches.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(self._queue)
                self._now = event.time
                self._events_processed += 1
                dispatched += 1
                event.callback(*event.args)
                if max_events is not None and dispatched >= max_events:
                    return
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Dispatch exactly one event.  Returns False if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
