"""The Internet cloud between the two enterprise networks.

The paper assumes "the Internet delay between A and B is 50 ms with 0.42%
packet loss rate".  The cloud is a transit node that imposes that one-way
delay and Bernoulli loss on every packet crossing it, independent of the
access-link characteristics (which are modeled by the DS1 links themselves).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .node import Router
from .packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link
    from .network import Network

__all__ = ["InternetCloud", "DEFAULT_INTERNET_DELAY", "DEFAULT_INTERNET_LOSS"]

#: One-way transit delay assumed in the paper's testbed (Section 7.1).
DEFAULT_INTERNET_DELAY = 0.050
#: Packet loss rate assumed in the paper's testbed (Section 7.1).
DEFAULT_INTERNET_LOSS = 0.0042


class InternetCloud(Router):
    """A transit cloud adding fixed delay and random loss."""

    def __init__(
        self,
        network: "Network",
        name: str = "internet",
        transit_delay: float = DEFAULT_INTERNET_DELAY,
        loss_rate: float = DEFAULT_INTERNET_LOSS,
    ):
        super().__init__(network, name)
        self.transit_delay = float(transit_delay)
        self.loss_rate = float(loss_rate)
        self._rng = network.streams.stream(f"internet:{name}:loss")
        self.packets_carried = 0
        self.packets_lost = 0

    def receive(self, datagram: Datagram, in_link: "Link") -> None:
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            self.packets_lost += 1
            self.network.count_drop(self.name, "internet-loss")
            return
        self.packets_carried += 1
        if self.transit_delay > 0:
            self.sim.schedule(self.transit_delay, self.forward, datagram, in_link)
        else:
            self.forward(datagram, in_link)
