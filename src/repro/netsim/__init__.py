"""Discrete-event network simulator (the reproduction's OPNET substitute).

Public surface:

- :class:`Simulator`, :class:`Timer` — the event loop.
- :class:`Network` — topology container and route computation.
- :class:`Host`, :class:`Router`, :class:`Hub` — nodes.
- :class:`Link` — duplex links with bandwidth/propagation/loss.
- :class:`InternetCloud` — fixed-delay, lossy transit.
- :class:`InlineDevice`, :class:`PacketProcessor` — bump-in-the-wire devices
  (where vids is deployed).
- :class:`Datagram`, :class:`Endpoint` — the packet model.
- :class:`RandomStreams` — named, seeded randomness.
- :class:`FaultPlan`, :class:`FaultyLink` — seeded fault injection
  (corruption, duplication, reordering, burst loss, link flaps).
"""

from .address import Endpoint, parse_endpoint
from .engine import SimulationError, Simulator, Timer
from .faults import FaultPlan, FaultStats, FaultyLink, inject_faults
from .inline import InlineDevice, NullProcessor, PacketProcessor
from .internet import (
    DEFAULT_INTERNET_DELAY,
    DEFAULT_INTERNET_LOSS,
    InternetCloud,
)
from .link import BPS_100BASET, BPS_DS1, Link, LinkStats
from .network import Network
from .node import Host, Hub, Node, Router
from .packet import IP_UDP_OVERHEAD, Datagram
from .random import RandomStreams
from .trace import PacketTrace, TraceRecord
from .traffic import CbrTrafficSource, OnOffTrafficSource, TrafficSink

__all__ = [
    "BPS_100BASET",
    "BPS_DS1",
    "CbrTrafficSource",
    "DEFAULT_INTERNET_DELAY",
    "DEFAULT_INTERNET_LOSS",
    "Datagram",
    "Endpoint",
    "FaultPlan",
    "FaultStats",
    "FaultyLink",
    "Host",
    "Hub",
    "IP_UDP_OVERHEAD",
    "InlineDevice",
    "InternetCloud",
    "Link",
    "LinkStats",
    "Network",
    "Node",
    "NullProcessor",
    "OnOffTrafficSource",
    "PacketProcessor",
    "PacketTrace",
    "RandomStreams",
    "Router",
    "SimulationError",
    "Simulator",
    "Timer",
    "TraceRecord",
    "TrafficSink",
    "inject_faults",
    "parse_endpoint",
]
