"""Named, seeded random-number streams.

Every stochastic choice in the reproduction (call arrivals, call durations,
Internet packet loss, ringing delays, attack launch times) draws from its own
named stream derived from a single master seed.  Two runs with the same seed
are bit-identical; changing one component's draw pattern does not perturb the
others — the property that makes "with vids" vs "without vids" comparisons
(Figures 9 and 10) paired rather than merely statistical.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent :class:`random.Random` streams.

    Each stream is seeded from SHA-256(master_seed, name), so streams are
    stable across runs and uncorrelated with one another.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are namespaced under ``name``."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
