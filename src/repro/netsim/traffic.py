"""Background cross-traffic generators.

The paper's opening premise: VoIP "shares the network resources with the
regular Internet traffic".  These generators put that regular traffic on
the wire so experiments can study voice QoS and vids behaviour under load:

- :class:`CbrTrafficSource` — constant bit rate (e.g. a bulk transfer);
- :class:`OnOffTrafficSource` — exponential on/off bursts (web-like).

Both send plain UDP datagrams with an arbitrary payload tag; the vids
classifier files them under OTHER, which is itself worth testing — the IDS
must not choke on, or alert about, unrelated traffic.
"""

from __future__ import annotations

import random
from typing import Optional

from .address import Endpoint
from .engine import Timer
from .node import Host
from .packet import IP_UDP_OVERHEAD

__all__ = ["CbrTrafficSource", "OnOffTrafficSource", "TrafficSink"]


class TrafficSink:
    """Counts background datagrams arriving at a port."""

    def __init__(self, host: Host, port: int):
        self.host = host
        self.port = port
        self.packets = 0
        self.bytes = 0
        host.bind(port, self._on_datagram)

    def _on_datagram(self, datagram) -> None:
        self.packets += 1
        self.bytes += datagram.size

    def close(self) -> None:
        self.host.unbind(self.port)


class CbrTrafficSource:
    """Constant-bit-rate UDP stream."""

    def __init__(
        self,
        host: Host,
        remote: Endpoint,
        rate_bps: float,
        packet_bytes: int = 1000,
        local_port: int = 40_000,
    ):
        self.host = host
        self.remote = remote
        self.rate_bps = float(rate_bps)
        self.packet_bytes = packet_bytes
        self.local_port = local_port
        self.packets_sent = 0
        self._payload = b"\x00" * max(1, packet_bytes - IP_UDP_OVERHEAD)
        self._timer: Optional[Timer] = None
        self._running = False

    @property
    def interval(self) -> float:
        return self.packet_bytes * 8.0 / self.rate_bps

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._timer = self.host.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.host.send_udp(self.remote, self._payload, self.local_port)
        self.packets_sent += 1
        self._timer = self.host.sim.schedule(self.interval, self._tick)


class OnOffTrafficSource:
    """Bursty traffic: exponential ON periods at peak rate, then silence."""

    def __init__(
        self,
        host: Host,
        remote: Endpoint,
        peak_rate_bps: float,
        mean_on: float = 1.0,
        mean_off: float = 2.0,
        packet_bytes: int = 1000,
        local_port: int = 40_002,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.remote = remote
        self.peak_rate_bps = float(peak_rate_bps)
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.packet_bytes = packet_bytes
        self.local_port = local_port
        self.packets_sent = 0
        self._rng = rng or random.Random(0)
        self._payload = b"\x00" * max(1, packet_bytes - IP_UDP_OVERHEAD)
        self._timer: Optional[Timer] = None
        self._running = False
        self._on_until = 0.0

    @property
    def interval(self) -> float:
        return self.packet_bytes * 8.0 / self.peak_rate_bps

    @property
    def mean_rate_bps(self) -> float:
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.peak_rate_bps * duty

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._begin_on_period()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _begin_on_period(self) -> None:
        if not self._running:
            return
        self._on_until = (self.host.sim.now
                          + self._rng.expovariate(1.0 / self.mean_on))
        self._tick()

    def _tick(self) -> None:
        if not self._running:
            return
        if self.host.sim.now >= self._on_until:
            off = self._rng.expovariate(1.0 / self.mean_off)
            self._timer = self.host.sim.schedule(off, self._begin_on_period)
            return
        self.host.send_udp(self.remote, self._payload, self.local_port)
        self.packets_sent += 1
        self._timer = self.host.sim.schedule(self.interval, self._tick)
