"""Inline (bump-in-the-wire) devices.

The vids host sits *between* the edge router and the enterprise hub
(paper Figures 1 and 7): every packet entering or leaving the protected
network is handed to the device, which forwards it to the opposite port
after a processing delay determined by an attached
:class:`PacketProcessor`.  The device is a single-server FIFO queue — the
same CPU parses SIP, logs RTP, and drives the state machines — so bursts of
signaling can momentarily delay media packets, which is the mechanism behind
the small RTP delay/jitter penalties measured in Figure 10.

With no processor attached (or a :class:`NullProcessor`), the device is the
paper's "in the absence of vids, the vids host simply forwards the received
packets" baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

from .node import Node
from .packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link
    from .network import Network

__all__ = ["PacketProcessor", "NullProcessor", "InlineDevice"]


class PacketProcessor(Protocol):
    """Anything that can inspect packets flowing through an inline device."""

    def process(self, datagram: Datagram, now: float) -> float:
        """Inspect ``datagram`` at time ``now``; return CPU service time (s)."""
        ...


class NullProcessor:
    """A processor that inspects nothing and costs nothing."""

    def process(self, datagram: Datagram, now: float) -> float:
        return 0.0


class InlineDevice(Node):
    """A transparent two-port forwarding device with a processing CPU."""

    def __init__(
        self,
        network: "Network",
        name: str,
        processor: Optional[PacketProcessor] = None,
        forwarding_latency: float = 0.0,
        fail_open: bool = True,
    ):
        super().__init__(network, name)
        # Explicit None check: a processor may define __len__ (e.g. a
        # PacketTrace with no records yet) and must not be discarded for
        # being falsy.
        self.processor: PacketProcessor = (
            processor if processor is not None else NullProcessor()
        )
        #: Fixed store-and-forward latency even with no processor (the host
        #: still moves the packet between NICs).
        self.forwarding_latency = float(forwarding_latency)
        #: Fail-open policy: a crashing processor must not take the wire
        #: down with it — the packet is forwarded uninspected and counted.
        self.fail_open = fail_open
        self._cpu_free_at = 0.0
        self.busy_time = 0.0
        self.packets_forwarded = 0
        self.processor_failures = 0
        self._started_at: Optional[float] = None

    def attach_link(self, link: "Link") -> None:
        if len(self.links) >= 2:
            raise ValueError(f"inline device {self.name} supports exactly 2 links")
        super().attach_link(link)

    def receive(self, datagram: Datagram, in_link: "Link") -> None:
        if len(self.links) != 2:
            raise RuntimeError(f"inline device {self.name} is not fully wired")
        if self._started_at is None:
            self._started_at = self.sim.now
        out_link = self.links[0] if in_link is self.links[1] else self.links[1]

        try:
            service = self.processor.process(datagram, self.sim.now)
        except Exception:
            if not self.fail_open:
                raise
            self.processor_failures += 1
            service = 0.0
        # A misbehaving processor must not run the device clock backwards.
        service = max(0.0, service)
        start = max(self.sim.now, self._cpu_free_at)
        done = start + service + self.forwarding_latency
        self._cpu_free_at = done
        self.busy_time += service + self.forwarding_latency
        self.packets_forwarded += 1
        if done <= self.sim.now:
            out_link.transmit(datagram, self)
        else:
            self.sim.schedule_at(done, out_link.transmit, datagram, self,
                                 label=f"fwd@{self.name}")

    def cpu_utilization(self, until: Optional[float] = None) -> float:
        """Fraction of elapsed time the device CPU spent processing.

        Zero or negative observation windows (``until`` at or before the
        first packet) report 0.0 rather than dividing by zero.
        """
        if self._started_at is None:
            return 0.0
        end = until if until is not None else self.sim.now
        elapsed = end - self._started_at
        if elapsed <= 0.0:
            return 0.0
        return self.busy_time / elapsed

    def register_metrics(self, registry, prefix: str = "netsim") -> None:
        """Expose this device's queue/CPU state through an obs registry."""
        labelnames = ("device",)
        registry.gauge(
            f"{prefix}_device_queue_seconds",
            "Seconds of processing backlog on the device CPU",
            labelnames=labelnames,
        ).labels(device=self.name).set_function(self.queue_depth)
        registry.gauge(
            f"{prefix}_device_cpu_utilization",
            "Fraction of elapsed time the device CPU spent processing",
            labelnames=labelnames,
        ).labels(device=self.name).set_function(self.cpu_utilization)
        registry.counter(
            f"{prefix}_device_packets_forwarded",
            "Packets forwarded through the device",
            labelnames=labelnames,
        ).labels(device=self.name).set_function(
            lambda: self.packets_forwarded)
        registry.counter(
            f"{prefix}_device_processor_failures",
            "Processor exceptions absorbed by the fail-open policy",
            labelnames=labelnames,
        ).labels(device=self.name).set_function(
            lambda: self.processor_failures)

    def queue_depth(self, now: Optional[float] = None) -> float:
        """Seconds of processing backlog queued on the device CPU.

        This is the single-server queue's virtual waiting time: how long a
        packet arriving at ``now`` would wait before its own service
        starts.  Overload-shedding processors watch this against their
        high/low watermarks.
        """
        current = self.sim.now if now is None else now
        return max(0.0, self._cpu_free_at - current)
