"""Point-to-point duplex links with bandwidth, propagation delay and loss.

A link models serialization (size * 8 / bandwidth), a FIFO transmit queue per
direction (a port busy sending holds subsequent packets back), fixed
propagation delay, and independent Bernoulli packet loss.  The enterprise
LANs in the testbed are 100BaseT (100 Mb/s) links and the uplinks are DS1
(1.544 Mb/s), exactly as in the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from .packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network
    from .node import Node

__all__ = ["Link", "LinkStats", "BPS_100BASET", "BPS_DS1"]

#: 100BaseT Ethernet, used for the enterprise LANs.
BPS_100BASET = 100_000_000
#: DS1 / T1 uplink rate, used for the Internet-facing links.
BPS_DS1 = 1_544_000


@dataclass
class LinkStats:
    """Per-direction counters kept by a link."""

    packets_sent: int = 0
    packets_dropped: int = 0       # random (Bernoulli) loss
    packets_overflowed: int = 0    # drop-tail queue overflow
    bytes_sent: int = 0
    queueing_delay_total: float = 0.0

    @property
    def mean_queueing_delay(self) -> float:
        return self.queueing_delay_total / self.packets_sent if self.packets_sent else 0.0


class Link:
    """A duplex point-to-point link between two nodes."""

    def __init__(
        self,
        network: "Network",
        node_a: "Node",
        node_b: "Node",
        bandwidth_bps: float = BPS_100BASET,
        propagation_delay: float = 0.0001,
        loss_rate: float = 0.0,
        max_queue_delay: Optional[float] = None,
        name: Optional[str] = None,
    ):
        self.network = network
        self.node_a = node_a
        self.node_b = node_b
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay = float(propagation_delay)
        self.loss_rate = float(loss_rate)
        #: Drop-tail buffer size expressed as seconds of queueing; None is
        #: an unbounded buffer.
        self.max_queue_delay = max_queue_delay
        self.name = name or f"{node_a.name}<->{node_b.name}"
        # Per-direction port state, keyed by sending node name.
        self._busy_until: Dict[str, float] = {node_a.name: 0.0, node_b.name: 0.0}
        self.stats: Dict[str, LinkStats] = {
            node_a.name: LinkStats(),
            node_b.name: LinkStats(),
        }
        self._rng = network.streams.stream(f"link:{self.name}:loss")
        node_a.attach_link(self)
        node_b.attach_link(self)

    def other(self, node: "Node") -> "Node":
        """The peer node on the far side of ``node``."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not attached to link {self.name}")

    def transmit(self, datagram: Datagram, sender: "Node") -> None:
        """Send ``datagram`` from ``sender`` toward the other end.

        Applies FIFO serialization queueing at the sender's port, then
        propagation delay, then Bernoulli loss; on survival the peer node's
        ``receive`` runs at the arrival instant.
        """
        sim = self.network.sim
        stats = self.stats[sender.name]
        serialization = datagram.size * 8.0 / self.bandwidth_bps
        start = max(sim.now, self._busy_until[sender.name])
        if (self.max_queue_delay is not None
                and start - sim.now > self.max_queue_delay):
            stats.packets_overflowed += 1
            return
        stats.queueing_delay_total += start - sim.now
        self._busy_until[sender.name] = start + serialization
        arrival = start + serialization + self.propagation_delay

        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            stats.packets_dropped += 1
            return
        stats.packets_sent += 1
        stats.bytes_sent += datagram.size
        receiver = self.other(sender)
        datagram.hops += 1
        sim.schedule_at(arrival, receiver.receive, datagram, self,
                        label=f"rx@{receiver.name}")
