"""Nodes of the simulated network: hosts, routers, and hubs.

Forwarding uses static next-hop routing tables computed by
:class:`repro.netsim.network.Network` from the topology graph (shortest
path), mirroring how OPNET auto-configures routes for a static scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from .address import Endpoint
from .packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link
    from .network import Network

__all__ = ["Node", "Host", "Router", "Hub"]

UdpHandler = Callable[[Datagram], None]


class Node:
    """Base class for anything attached to links."""

    def __init__(self, network: "Network", name: str):
        self.network = network
        self.name = name
        self.links: List["Link"] = []
        #: next-hop routing table: destination IP -> link to forward on
        self.routes: Dict[str, "Link"] = {}
        network.register_node(self)

    @property
    def sim(self):
        return self.network.sim

    def attach_link(self, link: "Link") -> None:
        self.links.append(link)

    def receive(self, datagram: Datagram, in_link: "Link") -> None:
        """Handle an arriving datagram.  Default behaviour: forward."""
        self.forward(datagram, in_link)

    def forward(self, datagram: Datagram, in_link: Optional["Link"]) -> None:
        """Forward ``datagram`` toward its destination via the routing table."""
        link = self.routes.get(datagram.dst.ip)
        if link is None:
            self.network.count_drop(self.name, "no-route")
            return
        link.transmit(datagram, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """A store-and-forward IP router."""


class Hub(Node):
    """A LAN aggregation device (modeled as a learning switch / router).

    The paper's enterprise networks hang all phones and the proxy off a hub;
    forwarding behaviour at this abstraction level is identical to a router
    with per-host routes.
    """


class Host(Node):
    """An end system with an IP address and a UDP socket table.

    Applications (SIP user agents, proxies, RTP sessions, attack injectors)
    bind handlers to local UDP ports and send datagrams with
    :meth:`send_udp`.
    """

    def __init__(self, network: "Network", name: str, ip: str):
        super().__init__(network, name)
        self.ip = ip
        self._sockets: Dict[int, UdpHandler] = {}
        network.register_host(self)

    def bind(self, port: int, handler: UdpHandler) -> None:
        """Bind ``handler`` to receive datagrams addressed to ``port``."""
        if port in self._sockets:
            raise ValueError(f"{self.name}: port {port} already bound")
        self._sockets[port] = handler

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def is_bound(self, port: int) -> bool:
        return port in self._sockets

    def send_udp(
        self,
        dst: Endpoint,
        payload: bytes,
        src_port: int,
        src_ip: Optional[str] = None,
    ) -> Datagram:
        """Create and transmit a UDP datagram from this host.

        ``src_ip`` may be supplied to *spoof* the source address — several of
        the paper's threat-model attacks (spoofed BYE/CANCEL, DRDoS) rely on
        exactly this capability, and the simulated network, like the real
        Internet, does not validate it.
        """
        datagram = Datagram(
            src=Endpoint(src_ip or self.ip, src_port),
            dst=dst,
            payload=payload,
            created_at=self.sim.now,
        )
        if dst.ip == self.ip:
            # Loopback delivery: stays on-host.
            self.sim.schedule(0.0, self._deliver, datagram)
        else:
            self.forward(datagram, None)
        return datagram

    def receive(self, datagram: Datagram, in_link: "Link") -> None:
        if datagram.dst.ip == self.ip:
            self._deliver(datagram)
        else:
            # Hosts do not forward transit traffic.
            self.network.count_drop(self.name, "not-mine")

    def _deliver(self, datagram: Datagram) -> None:
        handler = self._sockets.get(datagram.dst.port)
        if handler is None:
            self.network.count_drop(self.name, "port-unreachable")
            return
        handler(datagram)
