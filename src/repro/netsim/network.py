"""Topology container: nodes, links, hosts, and static route computation.

A :class:`Network` owns the simulator, the random streams, the node/host
registries, and a drop counter.  After the topology is wired,
:meth:`Network.compute_routes` builds per-node next-hop tables from
shortest paths over the (unit-weight) topology graph, using networkx.
"""

from __future__ import annotations

from collections import Counter
from functools import partial
from typing import Dict, List, Optional

import networkx as nx

from .engine import Simulator
from .link import Link
from .node import Host, Node
from .random import RandomStreams

__all__ = ["Network"]


class Network:
    """The simulated internetwork: one simulator, many nodes and links."""

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0):
        self.sim = sim or Simulator()
        self.streams = RandomStreams(seed)
        self.nodes: Dict[str, Node] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        self.drops: Counter = Counter()
        self._routes_valid = False

    # -- registration -----------------------------------------------------

    def register_node(self, node: Node) -> None:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        self._routes_valid = False

    def register_host(self, host: Host) -> None:
        if host.ip in self.hosts:
            raise ValueError(f"duplicate host IP: {host.ip}")
        self.hosts[host.ip] = host

    def link(self, node_a: Node, node_b: Node, **kwargs) -> Link:
        """Create a link between two nodes (see :class:`Link` for kwargs)."""
        link = Link(self, node_a, node_b, **kwargs)
        self.links.append(link)
        self._routes_valid = False
        return link

    def host_by_ip(self, ip: str) -> Host:
        return self.hosts[ip]

    def count_drop(self, node_name: str, reason: str) -> None:
        self.drops[(node_name, reason)] += 1

    # -- routing -----------------------------------------------------------

    def compute_routes(self) -> None:
        """Install next-hop routes on every node for every host IP.

        Shortest paths over the unit-weight topology graph; deterministic
        tie-breaking by node name.
        """
        graph = nx.Graph()
        graph.add_nodes_from(sorted(self.nodes))
        for link in self.links:
            graph.add_edge(link.node_a.name, link.node_b.name, link=link)

        for host in self.hosts.values():
            try:
                paths = nx.single_source_shortest_path(graph, host.name)
            except nx.NodeNotFound:  # pragma: no cover - defensive
                continue
            for node_name, path in paths.items():
                if len(path) < 2:
                    continue
                node = self.nodes[node_name]
                # path goes host -> ... -> node; next hop from node is the
                # second-to-last element.
                next_hop = path[-2]
                node.routes[host.ip] = graph.edges[node_name, next_hop]["link"]
        self._routes_valid = True

    def run(self, until: Optional[float] = None) -> None:
        """Compute routes if necessary and run the simulation."""
        if not self._routes_valid:
            self.compute_routes()
        self.sim.run(until=until)

    # -- observability -----------------------------------------------------

    def register_metrics(self, registry, prefix: str = "netsim") -> None:
        """Expose engine and per-link counters through an obs registry.

        All samples are callback-backed reads of the live simulation state,
        so registration costs nothing on the packet path.  Call after the
        topology is wired (links registered later won't be exported).
        """
        sim = self.sim
        registry.gauge(
            f"{prefix}_time_seconds", "Current simulation time",
        ).set_function(lambda: sim.now)
        registry.gauge(
            f"{prefix}_pending_events", "Live events queued in the engine",
        ).set_function(lambda: sim.pending_events)
        registry.counter(
            f"{prefix}_events_processed", "Events dispatched by the engine",
        ).set_function(lambda: sim.events_processed)

        labelnames = ("link", "sender")
        families = [
            (registry.counter(f"{prefix}_link_packets_sent",
                              "Packets delivered per link direction",
                              labelnames=labelnames), "packets_sent"),
            (registry.counter(f"{prefix}_link_packets_dropped",
                              "Packets lost to Bernoulli loss",
                              labelnames=labelnames), "packets_dropped"),
            (registry.counter(f"{prefix}_link_packets_overflowed",
                              "Packets dropped by the drop-tail queue",
                              labelnames=labelnames), "packets_overflowed"),
            (registry.counter(f"{prefix}_link_bytes_sent",
                              "Bytes delivered per link direction",
                              labelnames=labelnames), "bytes_sent"),
            (registry.counter(f"{prefix}_link_queueing_delay_seconds",
                              "Cumulative serialization queueing delay",
                              labelnames=labelnames), "queueing_delay_total"),
        ]
        for link in self.links:
            for sender, stats in link.stats.items():
                for family, attr in families:
                    family.labels(link=link.name, sender=sender).set_function(
                        partial(getattr, stats, attr))
