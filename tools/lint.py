#!/usr/bin/env python3
"""Repo-wide static-analysis gate (``make lint``).

Runs ruff and mypy with the configuration in ``pyproject.toml`` when they
are installed (CI installs them).  This container image is offline and does
not ship either tool, so when they are missing the script degrades to a
built-in fallback instead of skipping the gate entirely:

- ``py_compile`` over every Python file (syntax);
- a conservative AST pass approximating the ruff rules the repo relies on:
  F401 (unused module-level import), F841 (unused local binding), E711
  (``== None`` comparison), E722 (bare ``except``), E731 (lambda
  assignment), and B006 (mutable default argument).  ``# noqa`` comments
  are honored per line, with or without rule codes.

In *both* environments the script then runs ``codelint``
(:mod:`repro.analysis.codecheck`) against the committed baseline
(``tools/codelint_baseline.json``): implementation-invariant analysis is
repo-specific, so no external tool covers it.

Exit status is non-zero when any check reports findings, so the Makefile
target gates the same way in both environments.
"""

from __future__ import annotations

import ast
import py_compile
import re
import shutil
import subprocess
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "tools", "examples", "benchmarks")


def python_files() -> List[Path]:
    files: List[Path] = []
    for directory in SOURCE_DIRS:
        root = REPO_ROOT / directory
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    files.extend(sorted(REPO_ROOT.glob("*.py")))
    return [path for path in files if "__pycache__" not in path.parts]


def run_tool(command: List[str]) -> int:
    print(f"$ {' '.join(command)}", flush=True)
    return subprocess.call(command, cwd=REPO_ROOT)


def noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Line number -> set of silenced rule codes ('*' = all)."""
    silenced: Dict[int, Set[str]] = {}
    code_re = re.compile(r"[A-Z]+[0-9]+")
    for number, line in enumerate(source.splitlines(), start=1):
        if "# noqa" not in line:
            continue
        _, _, tail = line.partition("# noqa")
        if tail.lstrip().startswith(":"):
            # "# noqa: E731, F401 - prose" -> leading code token per part.
            codes = set()
            for part in tail.lstrip().lstrip(":").split(","):
                match = code_re.match(part.strip())
                if match:
                    codes.add(match.group(0))
            silenced[number] = codes or {"*"}
        else:
            silenced[number] = {"*"}
    return silenced


def is_silenced(silenced: Dict[int, Set[str]], line: int, code: str) -> bool:
    codes = silenced.get(line, set())
    return "*" in codes or code in codes


#: Call targets whose result is a fresh mutable container (B006).
_MUTABLE_FACTORIES = {
    "dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict",
}


class _FallbackChecker(ast.NodeVisitor):
    """Single-file AST pass for the F401/F841/E711/E722/E731/B006
    approximations."""

    def __init__(self, path: Path, tree: ast.Module, source: str):
        self.path = path
        self.tree = tree
        self.silenced = noqa_lines(source)
        self.findings: List[str] = []
        self.used_names: Set[str] = set()
        self.exported: Set[str] = set()

    def report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if is_silenced(self.silenced, line, code):
            return
        relative = self.path.relative_to(REPO_ROOT)
        self.findings.append(f"{relative}:{line}: {code} {message}")

    # -- usage collection --------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used_names.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    # -- rule checks -------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "E722", "do not use bare 'except'")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            self.report(node, "E731",
                        "do not assign a lambda expression, use a def")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_unused_locals(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self._check_unused_locals(node)
        self.generic_visit(node)

    def _check_mutable_defaults(self, node: ast.AST) -> None:
        # B006: a mutable default is evaluated once and shared by every
        # call — the classic aliasing trap.
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.Dict, ast.List, ast.Set,
                                           ast.DictComp, ast.ListComp,
                                           ast.SetComp))
            if isinstance(default, ast.Call) and \
                    isinstance(default.func, ast.Name) and \
                    default.func.id in _MUTABLE_FACTORIES:
                mutable = True
            if mutable:
                self.report(default, "B006",
                            "do not use mutable data structures for "
                            "argument defaults")

    def _check_unused_locals(self, node: ast.AST) -> None:
        # F841 (conservative): a simple name bound by a plain assignment
        # and never loaded anywhere in the function.  Tuple unpacking,
        # augmented assignment, and underscore names are skipped; any use
        # of locals()/eval/exec bails out entirely.
        loaded: Set[str] = set()
        escape_hatch = False
        nonlocal_names: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and \
                    isinstance(child.ctx, ast.Load):
                loaded.add(child.id)
                if child.id in ("locals", "eval", "exec", "vars"):
                    escape_hatch = True
            elif isinstance(child, (ast.Global, ast.Nonlocal)):
                nonlocal_names.update(child.names)
        if escape_hatch:
            return

        def own_scope(root: ast.AST):
            # Assignments are scanned in this function's scope only:
            # nested defs get their own visit (and closures may bind
            # names the outer scope never loads).
            for child in ast.iter_child_nodes(root):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda, ast.ClassDef)):
                    continue
                yield child
                yield from own_scope(child)

        for child in own_scope(node):
            if not isinstance(child, ast.Assign):
                continue
            for target in child.targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("_") or name in loaded or \
                        name in nonlocal_names:
                    continue
                self.report(target, "F841",
                            f"local variable '{name}' is assigned to "
                            f"but never used")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, operand in zip(node.ops, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and \
                    isinstance(operand, ast.Constant) and \
                    operand.value is None:
                self.report(node, "E711",
                            "comparison to None should be 'is None' / "
                            "'is not None'")
        self.generic_visit(node)

    # -- unused imports ----------------------------------------------------

    def collect_exports(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                if "__all__" in targets and isinstance(
                        node.value, (ast.List, ast.Tuple)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and \
                                isinstance(element.value, str):
                            self.exported.add(element.value)

    def check_unused_imports(self) -> None:
        if self.path.name == "__init__.py":
            return          # packages re-export; covered by __all__ anyway
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.partition(".")[0]
                    self._check_import_binding(node, alias, bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self._check_import_binding(node, alias, bound)

    def _check_import_binding(self, node: ast.stmt, alias: ast.alias,
                              bound: str) -> None:
        if bound.startswith("_"):
            return
        if bound in self.used_names or bound in self.exported:
            return
        self.report(node, "F401", f"'{alias.name}' imported but unused")

    def run(self) -> List[str]:
        self.collect_exports()
        self.visit(self.tree)
        self.check_unused_imports()
        return self.findings


def fallback_check(files: List[Path]) -> int:
    findings: List[str] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(f"{path}: unreadable: {exc}")
            continue
        try:
            py_compile.compile(str(path), doraise=True, cfile=None)
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, py_compile.PyCompileError) as exc:
            findings.append(f"{path}: syntax error: {exc}")
            continue
        findings.extend(_FallbackChecker(path, tree, source).run())
    for finding in findings:
        print(finding)
    print(f"fallback lint: {len(findings)} finding(s) in "
          f"{len(files)} file(s)")
    return 1 if findings else 0


def codelint_check() -> int:
    """Run the implementation-invariant analyzer against the baseline.

    Uses the in-repo ``repro.analysis.codecheck`` directly (no external
    tool implements these rules), so the gate is identical in CI and in
    the offline container.  Only *new* findings fail the build.
    """
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis.codecheck import (analyze, load_baseline,
                                              partition_findings)
        from repro.efsm.diagnostics import Severity, format_report
    finally:
        sys.path.pop(0)

    diagnostics = analyze()
    baseline = load_baseline(REPO_ROOT / "tools" / "codelint_baseline.json")
    new, accepted, stale = partition_findings(diagnostics, baseline)
    if new:
        print(format_report(new, label="codelint"))
    summary = f"codelint: {len(new)} new finding(s)"
    if accepted:
        summary += f", {len(accepted)} baselined"
    if stale:
        summary += f", {len(stale)} stale baseline entr(y/ies)"
    print(summary)
    return 1 if any(d.severity >= Severity.ERROR for d in new) else 0


def main() -> int:
    status = 0
    ran_external = False
    if shutil.which("ruff"):
        ran_external = True
        status |= run_tool(["ruff", "check", "."])
    if shutil.which("mypy"):
        ran_external = True
        status |= run_tool(["mypy", "--config-file", "pyproject.toml"])
    if not ran_external:
        print("ruff/mypy not installed; running built-in fallback checks "
              "(CI runs the real tools)")
        status = fallback_check(python_files())
    status |= codelint_check()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
